// Seeded shrinking configuration fuzzer for the stencil kernels and the
// tuner daemon's wisdom-key line format and socket protocol.
//
//   stencil_fuzz --seed 42 --iters 200            # fuzz, exit 1 on failures
//   stencil_fuzz --wisdom-iters 5000 --seed 42    # fuzz WisdomKey parse/serialize
//   stencil_fuzz --proto-iters 10000 --seed 42    # fuzz the live daemon protocol
//   stencil_fuzz --replay "method=vertical order=6 nx=64 ..."
//   stencil_fuzz --replay "wisdom method=fullslice device=gtx580 order=4 ..."
//   stencil_fuzz --replay "proto 50494e470a"
//   stencil_fuzz --seed 1 --iters 20 --sabotage halo   # negative self-test
//   stencil_fuzz --seed 7 --iters 100 --temporal-degree 4  # widen the tb axis
//
// Wisdom mode checks the parser law the daemon depends on (see
// service::wisdom_roundtrip_check): every line is either loudly rejected
// or parse -> to_line -> parse is a fixed point.  Failing lines are
// shrunk by token/byte deletion and printed as `wisdom <line>` replay
// lines for the corpus.
//
// Proto mode (--proto-iters, POSIX only) runs a *live* hardened
// SocketServer in-process with deliberately tight limits (2 in-flight
// sweeps, 300 ms read deadline, 512-byte frames) and throws adversarial
// byte blobs at it over real AF_UNIX connections: valid requests,
// mutated requests, binary garbage, oversized frames, truncated lines,
// pipelined bursts, CRLF framing.  The invariant per blob: the
// connection dies or answers in bounded time (the read deadline reaps
// anything else) and the daemon still answers PING afterwards — never a
// hang, never a crash, never an OOM.  Failing blobs are confirmed
// against a fresh server, shrunk by byte deletion (fresh server per
// failing candidate) and printed as `proto <hex>` replay lines.
//
// Each iteration draws one (method x order x precision x grid shape x
// launch config) sample — a pure function of (seed, iteration), so the
// stream is identical across hosts, thread counts and reruns — and runs
// every verification pillar on it: loud rejection of invalid configs,
// CPU-reference oracle, differential check against the forward-plane
// baseline, metamorphic relations, trace audit.  Failures are shrunk one
// axis at a time to a minimal sample and printed as a single replayable
// line (optionally appended to --repro-out for CI artifact upload).
//
// Exit codes: 0 all samples pass, 1 failures found, 2 bad arguments.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <vector>

#include "core/thread_pool.hpp"
#include "report/table.hpp"
#include "service/protocol.hpp"
#include "verify/fuzzer.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <memory>

#include "service/client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#endif

namespace {

using namespace inplane;

int usage() {
  std::fputs(
      "usage: stencil_fuzz [--seed N] [--iters N] [--threads N]\n"
      "                    [--sabotage none|halo] [--temporal-degree N]\n"
      "                    [--repro-out file]\n"
      "       stencil_fuzz --wisdom-iters N [--seed N] [--repro-out file]\n"
      "       stencil_fuzz --proto-iters N [--seed N] [--repro-out file]\n"
      "       stencil_fuzz --replay \"method=... order=... ...\"\n"
      "       stencil_fuzz --replay \"wisdom <key line>\"\n"
      "       stencil_fuzz --replay \"proto <hex bytes>\"\n",
      stderr);
  return 2;
}

// ---------------------------------------------------------------------------
// Wisdom-key line fuzzing.

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A syntactically plausible wisdom key line, as a pure function of rng
/// state: sometimes a fully valid key, sometimes near-valid.
std::string gen_wisdom_line(std::uint64_t& rng) {
  static const char* kMethods[] = {"fullslice", "classical", "vertical",
                                   "horizontal", "nvstencil", "forward", "warp9"};
  static const char* kDevices[] = {"gtx580", "gtx680", "c2070", "c2050",
                                   "./x.device"};
  static const char* kKinds[] = {"exhaustive", "model", "oracle"};
  static const char* kPrec[] = {"sp", "dp", "hp"};
  static const double kBetas[] = {0.0, 0.05, 0.25, 0.5, 1.0, 1.5, -0.25};
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "method=%s device=%s order=%d prec=%s nx=%d ny=%d nz=%d "
                "kind=%s beta=%.17g",
                kMethods[splitmix64(rng) % 7], kDevices[splitmix64(rng) % 5],
                static_cast<int>(splitmix64(rng) % 80) - 4,
                kPrec[splitmix64(rng) % 3],
                static_cast<int>(splitmix64(rng) % (1u << 25)) - 8,
                static_cast<int>(splitmix64(rng) % 512),
                static_cast<int>(splitmix64(rng) % 512), kKinds[splitmix64(rng) % 3],
                kBetas[splitmix64(rng) % 7]);
  std::string line = buf;
  if (splitmix64(rng) % 3 == 0) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), " devfp=0x%llx",
                  static_cast<unsigned long long>(splitmix64(rng)));
    line += fp;
  }
  return line;
}

/// Random structural mutations: byte edits, token duplication/deletion,
/// truncation, separator damage.
std::string mutate_line(std::string line, std::uint64_t& rng) {
  const int edits = 1 + static_cast<int>(splitmix64(rng) % 4);
  for (int e = 0; e < edits && !line.empty(); ++e) {
    const std::uint64_t pos = splitmix64(rng) % line.size();
    switch (splitmix64(rng) % 6) {
      case 0:  // flip a byte to random printable-ish garbage
        line[pos] = static_cast<char>(splitmix64(rng) % 256);
        break;
      case 1:  // delete a byte
        line.erase(pos, 1);
        break;
      case 2:  // insert a byte
        line.insert(pos, 1, static_cast<char>(' ' + splitmix64(rng) % 95));
        break;
      case 3:  // truncate
        line.resize(pos);
        break;
      case 4: {  // duplicate a token
        const std::size_t sp = line.rfind(' ', pos);
        const std::size_t start = sp == std::string::npos ? 0 : sp + 1;
        std::size_t end = line.find(' ', start);
        if (end == std::string::npos) end = line.size();
        line += " " + line.substr(start, end - start);
        break;
      }
      default:  // damage a separator
        if (const std::size_t eq = line.find('=', pos); eq != std::string::npos) {
          line[eq] = static_cast<char>(splitmix64(rng) % 2 == 0 ? ' ' : ':');
        }
        break;
    }
  }
  return line;
}

/// Greedy token- then byte-deletion shrink, preserving the failure.
std::string shrink_wisdom_failure(std::string line) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Try dropping whole space-separated tokens first.
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos <= line.size()) {
      std::size_t end = line.find(' ', pos);
      if (end == std::string::npos) end = line.size();
      tokens.push_back(line.substr(pos, end - pos));
      pos = end + 1;
    }
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      std::string candidate;
      for (std::size_t j = 0; j < tokens.size(); ++j) {
        if (j == i) continue;
        if (!candidate.empty()) candidate += " ";
        candidate += tokens[j];
      }
      if (candidate != line && !service::wisdom_roundtrip_check(candidate)) {
        line = candidate;
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t i = 0; i < line.size(); ++i) {
      std::string candidate = line;
      candidate.erase(i, 1);
      if (!service::wisdom_roundtrip_check(candidate)) {
        line = candidate;
        progress = true;
        break;
      }
    }
  }
  return line;
}

int run_wisdom_fuzz(std::uint64_t seed, int iters, const std::string& repro_out) {
  std::uint64_t rng = seed * 0x2545f4914f6cdd1dull + 1;
  int rejected = 0;
  std::vector<std::string> failures;
  for (int i = 0; i < iters; ++i) {
    std::string line = gen_wisdom_line(rng);
    const std::uint64_t strategy = splitmix64(rng) % 4;
    if (strategy == 1) {
      line = mutate_line(line, rng);
    } else if (strategy == 2) {
      // Re-serialize whatever parses and mutate the canonical form.
      if (const auto key = service::WisdomKey::parse(line)) line = key->to_line();
      line = mutate_line(line, rng);
    } else if (strategy == 3) {
      // Pure garbage.
      line.clear();
      const std::uint64_t n = splitmix64(rng) % 80;
      for (std::uint64_t b = 0; b < n; ++b) {
        line.push_back(static_cast<char>(splitmix64(rng) % 256));
      }
    }
    std::string why;
    if (!service::wisdom_roundtrip_check(line, &why)) {
      const std::string shrunk = shrink_wisdom_failure(line);
      std::printf("WISDOM FAILURE: %s\n  original: %s\n  minimal:  %s\n"
                  "  replay:   stencil_fuzz --replay \"wisdom %s\"\n",
                  why.c_str(), line.c_str(), shrunk.c_str(), shrunk.c_str());
      failures.push_back(shrunk);
    } else if (!service::WisdomKey::parse(line)) {
      ++rejected;
    }
  }
  std::printf("wisdom fuzz: seed %llu, %d line(s), %d rejected, %zu failure(s)\n",
              static_cast<unsigned long long>(seed), iters, rejected,
              failures.size());
  if (!repro_out.empty() && !failures.empty()) {
    std::string lines;
    for (const std::string& f : failures) lines += "wisdom " + f + "\n";
    report::write_file(repro_out, lines);
  }
  return failures.empty() ? 0 : 1;
}

int replay_wisdom(const std::string& line) {
  std::string why;
  if (!service::wisdom_roundtrip_check(line, &why)) {
    std::printf("replay: wisdom FAILED\n  %s\n  %s\n", line.c_str(), why.c_str());
    return 1;
  }
  std::string error;
  if (service::WisdomKey::parse(line, &error)) {
    std::printf("replay: wisdom ok (round-trips)\n");
  } else {
    std::printf("replay: wisdom rejected (loudly) — pass\n  %s\n", error.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Socket-protocol fuzzing: adversarial byte blobs against a live
// hardened server.

#ifndef _WIN32

/// A fresh in-process daemon with deliberately tight hardening limits,
/// restartable so a wedge-suspect server never contaminates the next
/// probe (each generation gets its own socket path).
struct ProtoHarness {
  std::unique_ptr<inplane::service::TuningService> svc;
  std::unique_ptr<inplane::service::SocketServer> server;
  std::string path;
  int generation = 0;

  static constexpr double kReadDeadlineMs = 300.0;
  static constexpr std::size_t kMaxFrameBytes = 512;

  void start() {
    stop();
    char buf[128];
    std::snprintf(buf, sizeof(buf), "/tmp/inplane_pfz_%ld_%d.sock",
                  static_cast<long>(::getpid()), generation++);
    path = buf;
    inplane::service::ServiceOptions sopts;
    sopts.cache_capacity = 32;
    sopts.sweep_policy = ExecPolicy{1};
    svc = std::make_unique<inplane::service::TuningService>(sopts);
    inplane::service::ServerOptions opts;
    opts.max_inflight = 2;
    opts.max_connections = 32;
    opts.read_deadline_ms = kReadDeadlineMs;
    opts.write_deadline_ms = 2000.0;
    opts.max_frame_bytes = kMaxFrameBytes;
    opts.retry_after_base_ms = 5.0;
    opts.drain_deadline_ms = 500.0;
    server = std::make_unique<inplane::service::SocketServer>(*svc, path, opts);
    server->start();
  }

  void stop() {
    server.reset();  // before svc: the service must outlive the server
    svc.reset();
    if (!path.empty()) ::unlink(path.c_str());
    path.clear();
  }

  ~ProtoHarness() { stop(); }
};

int proto_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The per-blob invariant: send the blob (chunked deterministically from
/// its own hash, so replays and shrinks keep the same framing), observe
/// the connection die or answer within a bounded time (the 300 ms read
/// deadline reaps everything quieter), then check the daemon still
/// answers PING.  Any hang, wedge or crash fails.
bool proto_blob_ok(const ProtoHarness& harness, const std::string& blob) {
  const int fd = proto_connect(harness.path);
  if (fd < 0) return false;  // daemon no longer accepting
  const std::size_t chunk = 1 + fnv1a(blob) % 97;
  bool peer_alive = true;
  for (std::size_t off = 0; off < blob.size() && peer_alive; off += chunk) {
    const std::size_t n = std::min(chunk, blob.size() - off);
    std::size_t sent = 0;
    while (sent < n) {
#ifdef MSG_NOSIGNAL
      const ssize_t r = ::send(fd, blob.data() + off + sent, n - sent, MSG_NOSIGNAL);
#else
      const ssize_t r = ::send(fd, blob.data() + off + sent, n - sent, 0);
#endif
      if (r < 0) {
        if (errno == EINTR) continue;
        peer_alive = false;  // server already cut us off: a legal reaction
        break;
      }
      sent += static_cast<std::size_t>(r);
    }
  }
  if (peer_alive) {
    // Await *any* reaction — response bytes or a close — within a bound
    // comfortably above the read deadline.  Silence past it is a hang.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(5000);
    bool reacted = false;
    char buf[4096];
    while (!reacted) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= until) break;
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(until - now).count());
      const int pr = ::poll(&pfd, 1, remaining);
      if (pr < 0) {
        if (errno == EINTR) continue;
        reacted = true;
        break;
      }
      if (pr == 0) break;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      reacted = true;  // bytes or close, either way the server reacted
      break;
    }
    if (!reacted) {
      ::close(fd);
      return false;
    }
  }
  ::close(fd);
  try {
    inplane::service::Client client(harness.path);
    client.connect();
    return client.roundtrip("PING") == "OK pong";
  } catch (const std::exception&) {
    return false;
  }
}

inplane::service::WisdomKey proto_small_key(std::uint64_t pick) {
  inplane::service::WisdomKey key;
  key.method = pick % 2 == 0 ? "fullslice" : "classical";
  key.device = "gtx580";
  key.order = pick % 4 < 2 ? 2 : 4;
  key.extent = Extent3{64, 32, 8 + 4 * static_cast<int>(pick % 3)};
  key.kind = "model";
  key.beta = 0.05;
  return key;
}

/// A mutated line that *still parses* as a valid TUNE/RUN can carry an
/// arbitrarily large extent — a sweep of it would dominate the fuzz run
/// (and its memory).  Protocol fuzzing is about framing and admission,
/// not sweep scaling, so break such lines instead of executing them.
std::string proto_defang(std::string line) {
  if (const auto req = service::parse_request(line)) {
    if ((req->verb == service::Verb::Tune || req->verb == service::Verb::Run) &&
        req->tune.key.extent.volume() > (1u << 16)) {
      return "X" + line;
    }
    if (req->verb == service::Verb::Shutdown) return "X" + line;  // keep it up
  }
  return line;
}

std::string gen_proto_blob(std::uint64_t& rng) {
  const auto valid_line = [&]() -> std::string {
    const std::uint64_t pick = splitmix64(rng);
    switch (pick % 8) {
      case 0:
        return "PING";
      case 1:
        return "STATS";
      default: {
        std::string line = inplane::service::format_tune_request(
            proto_small_key(pick >> 8), 0.0, 0, (pick >> 4) % 8 == 0);
        if (pick % 8 == 2) line = "RUN" + line.substr(4);
        return line;
      }
    }
  };
  std::string blob;
  switch (splitmix64(rng) % 8) {
    case 0:  // clean valid request
      blob = valid_line() + "\n";
      break;
    case 1:  // mutated request (parser pressure over a real socket)
      blob = proto_defang(mutate_line(valid_line(), rng));
      if (splitmix64(rng) % 2 == 0) blob += "\n";
      break;
    case 2: {  // garbage with sprinkled newlines
      const std::uint64_t n = 1 + splitmix64(rng) % 256;
      for (std::uint64_t i = 0; i < n; ++i) {
        blob.push_back(splitmix64(rng) % 17 == 0
                           ? '\n'
                           : static_cast<char>(splitmix64(rng) % 256));
      }
      break;
    }
    case 3: {  // oversized frame (past max_frame_bytes, poison path)
      const std::size_t n =
          ProtoHarness::kMaxFrameBytes + 1 + splitmix64(rng) % 1500;
      blob.assign(n, 'A');
      if (splitmix64(rng) % 2 == 0) blob += "\n";
      break;
    }
    case 4: {  // truncated valid prefix, never terminated (read-deadline path)
      const std::string line = valid_line();
      blob = line.substr(0, 1 + splitmix64(rng) % line.size());
      break;
    }
    case 5: {  // pipelined burst of requests in one blob
      const int lines = 2 + static_cast<int>(splitmix64(rng) % 3);
      for (int i = 0; i < lines; ++i) {
        std::string line = valid_line();
        if (splitmix64(rng) % 3 == 0) line = proto_defang(mutate_line(line, rng));
        blob += line + "\n";
      }
      break;
    }
    case 6: {  // binary garbage, no newline at all
      const std::uint64_t n = 1 + splitmix64(rng) % 300;
      for (std::uint64_t i = 0; i < n; ++i) {
        char c = static_cast<char>(splitmix64(rng) % 256);
        if (c == '\n') c = ' ';
        blob.push_back(c);
      }
      break;
    }
    default:  // CRLF framing and empty lines around a valid request
      blob = "\r\n\n" + valid_line() + "\r\n\n";
      break;
  }
  return blob;
}

/// Greedy byte-deletion shrink.  Every failing candidate may have wedged
/// the server, so the harness restarts after each confirmed step; passing
/// candidates leave it healthy (the invariant includes a PING).
std::string shrink_proto_failure(ProtoHarness& harness, std::string blob) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < blob.size(); ++i) {
      std::string candidate = blob;
      candidate.erase(i, 1);
      if (candidate.empty()) continue;
      if (!proto_blob_ok(harness, candidate)) {
        blob = candidate;
        harness.start();
        progress = true;
        break;
      }
    }
  }
  return blob;
}

int run_proto_fuzz(std::uint64_t seed, int iters, const std::string& repro_out) {
  std::uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 0x9042;
  ProtoHarness harness;
  harness.start();
  std::vector<std::string> failures;
  for (int i = 0; i < iters; ++i) {
    const std::string blob = gen_proto_blob(rng);
    if (proto_blob_ok(harness, blob)) continue;
    // Confirm against a fresh server: residue from earlier blobs (shed
    // budgets, orphaned sweeps) must not masquerade as a protocol bug.
    harness.start();
    if (proto_blob_ok(harness, blob)) continue;
    harness.start();
    const std::string shrunk = shrink_proto_failure(harness, blob);
    const std::string hex = service::hex_encode(shrunk);
    std::printf("PROTO FAILURE at iteration %d:\n  original: %zu byte(s)\n"
                "  minimal:  %zu byte(s)\n"
                "  replay:   stencil_fuzz --replay \"proto %s\"\n",
                i, blob.size(), shrunk.size(), hex.c_str());
    failures.push_back(hex);
    harness.start();
  }
  harness.stop();
  std::printf("proto fuzz: seed %llu, %d blob(s), %zu failure(s)\n",
              static_cast<unsigned long long>(seed), iters, failures.size());
  if (!repro_out.empty() && !failures.empty()) {
    std::string lines;
    for (const std::string& f : failures) lines += "proto " + f + "\n";
    report::write_file(repro_out, lines);
  }
  return failures.empty() ? 0 : 1;
}

int replay_proto(const std::string& hex) {
  const auto bytes = service::hex_decode(hex);
  if (!bytes) {
    std::fprintf(stderr, "bad proto replay line: not hex\n");
    return 2;
  }
  ProtoHarness harness;
  harness.start();
  const bool ok = proto_blob_ok(harness, *bytes);
  harness.stop();
  if (!ok) {
    std::printf("replay: proto FAILED (%zu byte(s) wedged or killed the server)\n",
                bytes->size());
    return 1;
  }
  std::printf("replay: proto ok (%zu byte(s), server lived and answered PING)\n",
              bytes->size());
  return 0;
}

#else  // _WIN32

int run_proto_fuzz(std::uint64_t, int, const std::string&) {
  std::fputs("stencil_fuzz: --proto-iters is POSIX-only\n", stderr);
  return 2;
}

int replay_proto(const std::string&) {
  std::fputs("stencil_fuzz: proto replay is POSIX-only\n", stderr);
  return 2;
}

#endif

int replay(const std::string& line, const ExecPolicy& policy) {
  std::string error;
  const auto sample = verify::FuzzSample::parse(line, &error);
  if (!sample) {
    std::fprintf(stderr, "bad replay line: %s\n", error.c_str());
    return 2;
  }
  const verify::FuzzVerdict v =
      verify::run_sample(*sample, gpusim::DeviceSpec::geforce_gtx580(), policy);
  if (v.rejected) {
    std::printf("replay: configuration rejected (loudly) — pass\n");
    return 0;
  }
  if (!v.pass) {
    std::printf("replay: FAILED\n  %s\n  %s\n", sample->to_line().c_str(),
                v.detail.c_str());
    return 1;
  }
  std::printf("replay: ok (%s)\n", sample->to_line().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  verify::FuzzOptions options;
  std::string replay_line;
  std::string repro_out;
  int wisdom_iters = 0;
  int proto_iters = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 0);
    } else if (key == "--iters") {
      options.iters = std::atoi(value());
    } else if (key == "--threads") {
      options.policy = ExecPolicy{std::atoi(value())};
    } else if (key == "--no-shrink") {
      options.shrink = false;
    } else if (key == "--temporal-degree") {
      options.max_temporal_degree = std::atoi(value());
      if (options.max_temporal_degree < 1 || options.max_temporal_degree > 8) {
        std::fprintf(stderr, "--temporal-degree must be in [1, 8]\n");
        return 2;
      }
    } else if (key == "--sabotage") {
      const std::string s = value();
      if (s == "none") {
        options.sabotage = verify::Sabotage::None;
      } else if (s == "halo") {
        options.sabotage = verify::Sabotage::HaloOffByOne;
      } else {
        std::fprintf(stderr, "unknown sabotage '%s' (none | halo)\n", s.c_str());
        return 2;
      }
    } else if (key == "--replay") {
      replay_line = value();
    } else if (key == "--wisdom-iters") {
      wisdom_iters = std::atoi(value());
    } else if (key == "--proto-iters") {
      proto_iters = std::atoi(value());
    } else if (key == "--repro-out") {
      repro_out = value();
    } else {
      return usage();
    }
  }
  if (!replay_line.empty()) {
    if (replay_line.rfind("wisdom ", 0) == 0) {
      return replay_wisdom(replay_line.substr(7));
    }
    if (replay_line.rfind("proto ", 0) == 0) {
      return replay_proto(replay_line.substr(6));
    }
    return replay(replay_line, options.policy);
  }
  if (proto_iters > 0) return run_proto_fuzz(options.seed, proto_iters, repro_out);
  if (wisdom_iters > 0) return run_wisdom_fuzz(options.seed, wisdom_iters, repro_out);
  if (options.iters < 1) return usage();

  const verify::FuzzResult result = verify::run_fuzz(options);
  std::printf("fuzz: seed %llu, %d sample(s), %d rejected, %zu failure(s)\n",
              static_cast<unsigned long long>(options.seed), result.iters,
              result.rejected, result.failures.size());
  for (const verify::FuzzFailure& f : result.failures) {
    std::printf("FAILURE (%d shrink step(s)):\n  original: %s\n  minimal:  %s\n"
                "  detail:   %s\n  replay:   stencil_fuzz --replay \"%s\"\n",
                f.shrink_steps, f.original.to_line().c_str(),
                f.shrunk.to_line().c_str(), f.detail.c_str(),
                f.shrunk.to_line().c_str());
  }
  if (!repro_out.empty() && !result.failures.empty()) {
    std::string lines;
    for (const verify::FuzzFailure& f : result.failures) {
      lines += f.shrunk.to_line() + "\n";
    }
    report::write_file(repro_out, lines);
    std::printf("wrote %zu repro line(s) to %s\n", result.failures.size(),
                repro_out.c_str());
  }
  return result.pass() ? 0 : 1;
}
