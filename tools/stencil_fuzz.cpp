// Seeded shrinking configuration fuzzer for the stencil kernels.
//
//   stencil_fuzz --seed 42 --iters 200            # fuzz, exit 1 on failures
//   stencil_fuzz --replay "method=vertical order=6 nx=64 ..."
//   stencil_fuzz --seed 1 --iters 20 --sabotage halo   # negative self-test
//
// Each iteration draws one (method x order x precision x grid shape x
// launch config) sample — a pure function of (seed, iteration), so the
// stream is identical across hosts, thread counts and reruns — and runs
// every verification pillar on it: loud rejection of invalid configs,
// CPU-reference oracle, differential check against the forward-plane
// baseline, metamorphic relations, trace audit.  Failures are shrunk one
// axis at a time to a minimal sample and printed as a single replayable
// line (optionally appended to --repro-out for CI artifact upload).
//
// Exit codes: 0 all samples pass, 1 failures found, 2 bad arguments.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/thread_pool.hpp"
#include "report/table.hpp"
#include "verify/fuzzer.hpp"

namespace {

using namespace inplane;

int usage() {
  std::fputs(
      "usage: stencil_fuzz [--seed N] [--iters N] [--threads N]\n"
      "                    [--sabotage none|halo] [--repro-out file]\n"
      "       stencil_fuzz --replay \"method=... order=... ...\"\n",
      stderr);
  return 2;
}

int replay(const std::string& line, const ExecPolicy& policy) {
  std::string error;
  const auto sample = verify::FuzzSample::parse(line, &error);
  if (!sample) {
    std::fprintf(stderr, "bad replay line: %s\n", error.c_str());
    return 2;
  }
  const verify::FuzzVerdict v =
      verify::run_sample(*sample, gpusim::DeviceSpec::geforce_gtx580(), policy);
  if (v.rejected) {
    std::printf("replay: configuration rejected (loudly) — pass\n");
    return 0;
  }
  if (!v.pass) {
    std::printf("replay: FAILED\n  %s\n  %s\n", sample->to_line().c_str(),
                v.detail.c_str());
    return 1;
  }
  std::printf("replay: ok (%s)\n", sample->to_line().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  verify::FuzzOptions options;
  std::string replay_line;
  std::string repro_out;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 0);
    } else if (key == "--iters") {
      options.iters = std::atoi(value());
    } else if (key == "--threads") {
      options.policy = ExecPolicy{std::atoi(value())};
    } else if (key == "--no-shrink") {
      options.shrink = false;
    } else if (key == "--sabotage") {
      const std::string s = value();
      if (s == "none") {
        options.sabotage = verify::Sabotage::None;
      } else if (s == "halo") {
        options.sabotage = verify::Sabotage::HaloOffByOne;
      } else {
        std::fprintf(stderr, "unknown sabotage '%s' (none | halo)\n", s.c_str());
        return 2;
      }
    } else if (key == "--replay") {
      replay_line = value();
    } else if (key == "--repro-out") {
      repro_out = value();
    } else {
      return usage();
    }
  }
  if (!replay_line.empty()) return replay(replay_line, options.policy);
  if (options.iters < 1) return usage();

  const verify::FuzzResult result = verify::run_fuzz(options);
  std::printf("fuzz: seed %llu, %d sample(s), %d rejected, %zu failure(s)\n",
              static_cast<unsigned long long>(options.seed), result.iters,
              result.rejected, result.failures.size());
  for (const verify::FuzzFailure& f : result.failures) {
    std::printf("FAILURE (%d shrink step(s)):\n  original: %s\n  minimal:  %s\n"
                "  detail:   %s\n  replay:   stencil_fuzz --replay \"%s\"\n",
                f.shrink_steps, f.original.to_line().c_str(),
                f.shrunk.to_line().c_str(), f.detail.c_str(),
                f.shrunk.to_line().c_str());
  }
  if (!repro_out.empty() && !result.failures.empty()) {
    std::string lines;
    for (const verify::FuzzFailure& f : result.failures) {
      lines += f.shrunk.to_line() + "\n";
    }
    report::write_file(repro_out, lines);
    std::printf("wrote %zu repro line(s) to %s\n", result.failures.size(),
                repro_out.c_str());
  }
  return result.pass() ? 0 : 1;
}
