// Seeded shrinking configuration fuzzer for the stencil kernels and the
// tuner daemon's wisdom-key line format.
//
//   stencil_fuzz --seed 42 --iters 200            # fuzz, exit 1 on failures
//   stencil_fuzz --wisdom-iters 5000 --seed 42    # fuzz WisdomKey parse/serialize
//   stencil_fuzz --replay "method=vertical order=6 nx=64 ..."
//   stencil_fuzz --replay "wisdom method=fullslice device=gtx580 order=4 ..."
//   stencil_fuzz --seed 1 --iters 20 --sabotage halo   # negative self-test
//   stencil_fuzz --seed 7 --iters 100 --temporal-degree 4  # widen the tb axis
//
// Wisdom mode checks the parser law the daemon depends on (see
// service::wisdom_roundtrip_check): every line is either loudly rejected
// or parse -> to_line -> parse is a fixed point.  Failing lines are
// shrunk by token/byte deletion and printed as `wisdom <line>` replay
// lines for the corpus.
//
// Each iteration draws one (method x order x precision x grid shape x
// launch config) sample — a pure function of (seed, iteration), so the
// stream is identical across hosts, thread counts and reruns — and runs
// every verification pillar on it: loud rejection of invalid configs,
// CPU-reference oracle, differential check against the forward-plane
// baseline, metamorphic relations, trace audit.  Failures are shrunk one
// axis at a time to a minimal sample and printed as a single replayable
// line (optionally appended to --repro-out for CI artifact upload).
//
// Exit codes: 0 all samples pass, 1 failures found, 2 bad arguments.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <vector>

#include "core/thread_pool.hpp"
#include "report/table.hpp"
#include "service/protocol.hpp"
#include "verify/fuzzer.hpp"

namespace {

using namespace inplane;

int usage() {
  std::fputs(
      "usage: stencil_fuzz [--seed N] [--iters N] [--threads N]\n"
      "                    [--sabotage none|halo] [--temporal-degree N]\n"
      "                    [--repro-out file]\n"
      "       stencil_fuzz --wisdom-iters N [--seed N] [--repro-out file]\n"
      "       stencil_fuzz --replay \"method=... order=... ...\"\n"
      "       stencil_fuzz --replay \"wisdom <key line>\"\n",
      stderr);
  return 2;
}

// ---------------------------------------------------------------------------
// Wisdom-key line fuzzing.

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A syntactically plausible wisdom key line, as a pure function of rng
/// state: sometimes a fully valid key, sometimes near-valid.
std::string gen_wisdom_line(std::uint64_t& rng) {
  static const char* kMethods[] = {"fullslice", "classical", "vertical",
                                   "horizontal", "nvstencil", "forward", "warp9"};
  static const char* kDevices[] = {"gtx580", "gtx680", "c2070", "c2050",
                                   "./x.device"};
  static const char* kKinds[] = {"exhaustive", "model", "oracle"};
  static const char* kPrec[] = {"sp", "dp", "hp"};
  static const double kBetas[] = {0.0, 0.05, 0.25, 0.5, 1.0, 1.5, -0.25};
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "method=%s device=%s order=%d prec=%s nx=%d ny=%d nz=%d "
                "kind=%s beta=%.17g",
                kMethods[splitmix64(rng) % 7], kDevices[splitmix64(rng) % 5],
                static_cast<int>(splitmix64(rng) % 80) - 4,
                kPrec[splitmix64(rng) % 3],
                static_cast<int>(splitmix64(rng) % (1u << 25)) - 8,
                static_cast<int>(splitmix64(rng) % 512),
                static_cast<int>(splitmix64(rng) % 512), kKinds[splitmix64(rng) % 3],
                kBetas[splitmix64(rng) % 7]);
  std::string line = buf;
  if (splitmix64(rng) % 3 == 0) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), " devfp=0x%llx",
                  static_cast<unsigned long long>(splitmix64(rng)));
    line += fp;
  }
  return line;
}

/// Random structural mutations: byte edits, token duplication/deletion,
/// truncation, separator damage.
std::string mutate_line(std::string line, std::uint64_t& rng) {
  const int edits = 1 + static_cast<int>(splitmix64(rng) % 4);
  for (int e = 0; e < edits && !line.empty(); ++e) {
    const std::uint64_t pos = splitmix64(rng) % line.size();
    switch (splitmix64(rng) % 6) {
      case 0:  // flip a byte to random printable-ish garbage
        line[pos] = static_cast<char>(splitmix64(rng) % 256);
        break;
      case 1:  // delete a byte
        line.erase(pos, 1);
        break;
      case 2:  // insert a byte
        line.insert(pos, 1, static_cast<char>(' ' + splitmix64(rng) % 95));
        break;
      case 3:  // truncate
        line.resize(pos);
        break;
      case 4: {  // duplicate a token
        const std::size_t sp = line.rfind(' ', pos);
        const std::size_t start = sp == std::string::npos ? 0 : sp + 1;
        std::size_t end = line.find(' ', start);
        if (end == std::string::npos) end = line.size();
        line += " " + line.substr(start, end - start);
        break;
      }
      default:  // damage a separator
        if (const std::size_t eq = line.find('=', pos); eq != std::string::npos) {
          line[eq] = static_cast<char>(splitmix64(rng) % 2 == 0 ? ' ' : ':');
        }
        break;
    }
  }
  return line;
}

/// Greedy token- then byte-deletion shrink, preserving the failure.
std::string shrink_wisdom_failure(std::string line) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Try dropping whole space-separated tokens first.
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos <= line.size()) {
      std::size_t end = line.find(' ', pos);
      if (end == std::string::npos) end = line.size();
      tokens.push_back(line.substr(pos, end - pos));
      pos = end + 1;
    }
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      std::string candidate;
      for (std::size_t j = 0; j < tokens.size(); ++j) {
        if (j == i) continue;
        if (!candidate.empty()) candidate += " ";
        candidate += tokens[j];
      }
      if (candidate != line && !service::wisdom_roundtrip_check(candidate)) {
        line = candidate;
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t i = 0; i < line.size(); ++i) {
      std::string candidate = line;
      candidate.erase(i, 1);
      if (!service::wisdom_roundtrip_check(candidate)) {
        line = candidate;
        progress = true;
        break;
      }
    }
  }
  return line;
}

int run_wisdom_fuzz(std::uint64_t seed, int iters, const std::string& repro_out) {
  std::uint64_t rng = seed * 0x2545f4914f6cdd1dull + 1;
  int rejected = 0;
  std::vector<std::string> failures;
  for (int i = 0; i < iters; ++i) {
    std::string line = gen_wisdom_line(rng);
    const std::uint64_t strategy = splitmix64(rng) % 4;
    if (strategy == 1) {
      line = mutate_line(line, rng);
    } else if (strategy == 2) {
      // Re-serialize whatever parses and mutate the canonical form.
      if (const auto key = service::WisdomKey::parse(line)) line = key->to_line();
      line = mutate_line(line, rng);
    } else if (strategy == 3) {
      // Pure garbage.
      line.clear();
      const std::uint64_t n = splitmix64(rng) % 80;
      for (std::uint64_t b = 0; b < n; ++b) {
        line.push_back(static_cast<char>(splitmix64(rng) % 256));
      }
    }
    std::string why;
    if (!service::wisdom_roundtrip_check(line, &why)) {
      const std::string shrunk = shrink_wisdom_failure(line);
      std::printf("WISDOM FAILURE: %s\n  original: %s\n  minimal:  %s\n"
                  "  replay:   stencil_fuzz --replay \"wisdom %s\"\n",
                  why.c_str(), line.c_str(), shrunk.c_str(), shrunk.c_str());
      failures.push_back(shrunk);
    } else if (!service::WisdomKey::parse(line)) {
      ++rejected;
    }
  }
  std::printf("wisdom fuzz: seed %llu, %d line(s), %d rejected, %zu failure(s)\n",
              static_cast<unsigned long long>(seed), iters, rejected,
              failures.size());
  if (!repro_out.empty() && !failures.empty()) {
    std::string lines;
    for (const std::string& f : failures) lines += "wisdom " + f + "\n";
    report::write_file(repro_out, lines);
  }
  return failures.empty() ? 0 : 1;
}

int replay_wisdom(const std::string& line) {
  std::string why;
  if (!service::wisdom_roundtrip_check(line, &why)) {
    std::printf("replay: wisdom FAILED\n  %s\n  %s\n", line.c_str(), why.c_str());
    return 1;
  }
  std::string error;
  if (service::WisdomKey::parse(line, &error)) {
    std::printf("replay: wisdom ok (round-trips)\n");
  } else {
    std::printf("replay: wisdom rejected (loudly) — pass\n  %s\n", error.c_str());
  }
  return 0;
}

int replay(const std::string& line, const ExecPolicy& policy) {
  std::string error;
  const auto sample = verify::FuzzSample::parse(line, &error);
  if (!sample) {
    std::fprintf(stderr, "bad replay line: %s\n", error.c_str());
    return 2;
  }
  const verify::FuzzVerdict v =
      verify::run_sample(*sample, gpusim::DeviceSpec::geforce_gtx580(), policy);
  if (v.rejected) {
    std::printf("replay: configuration rejected (loudly) — pass\n");
    return 0;
  }
  if (!v.pass) {
    std::printf("replay: FAILED\n  %s\n  %s\n", sample->to_line().c_str(),
                v.detail.c_str());
    return 1;
  }
  std::printf("replay: ok (%s)\n", sample->to_line().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  verify::FuzzOptions options;
  std::string replay_line;
  std::string repro_out;
  int wisdom_iters = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 0);
    } else if (key == "--iters") {
      options.iters = std::atoi(value());
    } else if (key == "--threads") {
      options.policy = ExecPolicy{std::atoi(value())};
    } else if (key == "--no-shrink") {
      options.shrink = false;
    } else if (key == "--temporal-degree") {
      options.max_temporal_degree = std::atoi(value());
      if (options.max_temporal_degree < 1 || options.max_temporal_degree > 8) {
        std::fprintf(stderr, "--temporal-degree must be in [1, 8]\n");
        return 2;
      }
    } else if (key == "--sabotage") {
      const std::string s = value();
      if (s == "none") {
        options.sabotage = verify::Sabotage::None;
      } else if (s == "halo") {
        options.sabotage = verify::Sabotage::HaloOffByOne;
      } else {
        std::fprintf(stderr, "unknown sabotage '%s' (none | halo)\n", s.c_str());
        return 2;
      }
    } else if (key == "--replay") {
      replay_line = value();
    } else if (key == "--wisdom-iters") {
      wisdom_iters = std::atoi(value());
    } else if (key == "--repro-out") {
      repro_out = value();
    } else {
      return usage();
    }
  }
  if (!replay_line.empty()) {
    if (replay_line.rfind("wisdom ", 0) == 0) {
      return replay_wisdom(replay_line.substr(7));
    }
    return replay(replay_line, options.policy);
  }
  if (wisdom_iters > 0) return run_wisdom_fuzz(options.seed, wisdom_iters, repro_out);
  if (options.iters < 1) return usage();

  const verify::FuzzResult result = verify::run_fuzz(options);
  std::printf("fuzz: seed %llu, %d sample(s), %d rejected, %zu failure(s)\n",
              static_cast<unsigned long long>(options.seed), result.iters,
              result.rejected, result.failures.size());
  for (const verify::FuzzFailure& f : result.failures) {
    std::printf("FAILURE (%d shrink step(s)):\n  original: %s\n  minimal:  %s\n"
                "  detail:   %s\n  replay:   stencil_fuzz --replay \"%s\"\n",
                f.shrink_steps, f.original.to_line().c_str(),
                f.shrunk.to_line().c_str(), f.detail.c_str(),
                f.shrunk.to_line().c_str());
  }
  if (!repro_out.empty() && !result.failures.empty()) {
    std::string lines;
    for (const verify::FuzzFailure& f : result.failures) {
      lines += f.shrunk.to_line() + "\n";
    }
    report::write_file(repro_out, lines);
    std::printf("wrote %zu repro line(s) to %s\n", result.failures.size(),
                repro_out.c_str());
  }
  return result.pass() ? 0 : 1;
}
