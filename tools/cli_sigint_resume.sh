#!/usr/bin/env bash
# Regression test for the tune command's signal handling: a SIGINT raised
# mid-sweep (in-process, via the hidden --raise-sigint-after knob) must
# cancel gracefully — journal flushed, exit code 5 (ResourceExhausted),
# NOT a signal death — and a --resume run must finish from the journal
# without re-measuring what the interrupted run already journaled.
set -u

INPLANE="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
JOURNAL="$DIR/tune.iptj"

COMMON=(tune --method fullslice --order 4 --device gtx580
        --nx 128 --ny 64 --nz 16 --threads 1 --checkpoint "$JOURNAL")

"$INPLANE" "${COMMON[@]}" --raise-sigint-after 3 > "$DIR/first.log" 2>&1
code=$?
if [ "$code" -ne 5 ]; then
  echo "FAIL: interrupted tune exited $code, want 5 (deadline/cancelled path)"
  cat "$DIR/first.log"
  exit 1
fi
if [ ! -s "$JOURNAL" ]; then
  echo "FAIL: interrupted tune left no checkpoint journal"
  exit 1
fi

"$INPLANE" "${COMMON[@]}" --resume > "$DIR/second.log" 2>&1
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: resumed tune exited $code, want 0"
  cat "$DIR/second.log"
  exit 1
fi
if ! grep -q "resumed [1-9][0-9]* measurement" "$DIR/second.log"; then
  echo "FAIL: resumed tune did not report resumed measurements"
  cat "$DIR/second.log"
  exit 1
fi
echo "ok: SIGINT -> exit 5 with journal; --resume completed from it"
