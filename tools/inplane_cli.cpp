// The `inplane` command-line tool: run, tune, model, and generate CUDA for
// the paper's kernels from the shell.
//
//   inplane devices
//   inplane run    --method fullslice --order 8 --device gtx580
//                  --tx 64 --ty 4 --rx 2 --ry 2 [--dp]
//   inplane tune   --method fullslice --order 8 --device gtx680 [--dp] [--beta 0.05]
//   inplane model  --method fullslice --order 8 --device c2070 --tx 64 --ty 4
//   inplane codegen --method fullslice --order 8 --tx 64 --ty 4 -o kernel.cu

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include <optional>

#include "autotune/tuner.hpp"
#include "codegen/cuda_codegen.hpp"
#include "core/cancel.hpp"
#include "core/mem_budget.hpp"
#include "core/status.hpp"
#include "gpusim/device_file.hpp"
#include "gpusim/fault_injector.hpp"
#include "kernels/runner.hpp"
#include "perfmodel/model.hpp"
#include "report/table.hpp"
#include "verify/fuzzer.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

struct Args {
  std::map<std::string, std::string> kv;
  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  [[nodiscard]] int geti(const std::string& key, int dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::atoi(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const { return kv.count(key) > 0; }
};

/// Builds the governance state shared by run and tune: an optional
/// deadline token (--deadline-ms) and an optional memory budget
/// (--mem-budget, bytes).  Lives on the caller's stack for the whole
/// command so raw pointers into it stay valid.
struct Governance {
  std::optional<CancelToken> cancel;
  std::optional<MemBudget> budget;

  explicit Governance(const Args& args) {
    if (args.has("deadline-ms")) {
      cancel.emplace();
      cancel->set_deadline_ms(std::atof(args.get("deadline-ms", "0").c_str()));
    }
    if (args.has("mem-budget")) {
      budget.emplace(std::strtoull(args.get("mem-budget", "0").c_str(), nullptr, 10));
    }
  }
  [[nodiscard]] const CancelToken* token() const {
    return cancel ? &*cancel : nullptr;
  }
  [[nodiscard]] MemBudget* mem() { return budget ? &*budget : nullptr; }
};

/// Signal-to-cancellation bridge for `tune`: SIGINT/SIGTERM cancel the
/// sweep's token instead of killing the process mid-measurement, so the
/// in-flight candidate finishes, every journaled record stays flushed,
/// and the process leaves through the regular cancellation path —
/// ResourceExhausted, exit code 5 — after which `--resume` picks the
/// sweep up where Ctrl-C left it.  CancelToken::cancel() is one relaxed
/// atomic store, so the handler is async-signal-safe.
std::atomic<CancelToken*> g_signal_cancel{nullptr};

void tune_signal_handler(int) {
  if (CancelToken* tok = g_signal_cancel.load()) tok->cancel();
}

/// Installs the bridge for the lifetime of one tune command and restores
/// default signal disposition on the way out.
struct SignalCancelScope {
  explicit SignalCancelScope(CancelToken* tok) {
    g_signal_cancel.store(tok);
    std::signal(SIGINT, tune_signal_handler);
    std::signal(SIGTERM, tune_signal_handler);
  }
  ~SignalCancelScope() {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_signal_cancel.store(nullptr);
  }
  SignalCancelScope(const SignalCancelScope&) = delete;
  SignalCancelScope& operator=(const SignalCancelScope&) = delete;
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.kv[key] = argv[++i];
    } else {
      args.kv[key] = "1";  // flag
    }
  }
  return args;
}

gpusim::DeviceSpec device_by_name(const std::string& name) {
  // A path (contains '/' or ends in ".device") loads a custom description.
  if (name.find('/') != std::string::npos ||
      (name.size() > 7 && name.substr(name.size() - 7) == ".device")) {
    return gpusim::load_device(name);
  }
  if (name == "gtx580") return gpusim::DeviceSpec::geforce_gtx580();
  if (name == "gtx680") return gpusim::DeviceSpec::geforce_gtx680();
  if (name == "c2070") return gpusim::DeviceSpec::tesla_c2070();
  if (name == "c2050") return gpusim::DeviceSpec::tesla_c2050();
  throw InvalidConfigError("unknown device '" + name +
                           "' (gtx580 | gtx680 | c2070 | c2050 | path to a .device file)");
}

Method method_by_name(const std::string& name) {
  if (name == "nvstencil" || name == "forward") return Method::ForwardPlane;
  if (name == "classical") return Method::InPlaneClassical;
  if (name == "vertical") return Method::InPlaneVertical;
  if (name == "horizontal") return Method::InPlaneHorizontal;
  if (name == "fullslice" || name == "full-slice") return Method::InPlaneFullSlice;
  throw InvalidConfigError(
      "unknown method '" + name +
      "' (nvstencil | classical | vertical | horizontal | fullslice)");
}

Extent3 grid_from(const Args& args) {
  return {args.geti("nx", 512), args.geti("ny", 512), args.geti("nz", 256)};
}

LaunchConfig config_from(const Args& args, Method method, bool dp) {
  LaunchConfig cfg;
  cfg.tx = args.geti("tx", 32);
  cfg.ty = args.geti("ty", 16);
  cfg.rx = args.geti("rx", 1);
  cfg.ry = args.geti("ry", 1);
  cfg.vec = args.geti("vec", autotune::default_vec(method, dp ? 8 : 4));
  // Degree-N temporal blocking (full-slice only): run/model/codegen treat
  // the degree as part of the launch configuration, exactly as the tuner
  // does.
  cfg.tb = args.geti("temporal-degree", 1);
  return cfg;
}

void print_timing(const std::string& label, const gpusim::KernelTiming& t) {
  if (!t.valid) {
    std::printf("%s: invalid configuration (%s)\n", label.c_str(),
                t.invalid_reason.c_str());
    return;
  }
  std::printf("%s:\n", label.c_str());
  std::printf("  %.1f MPoint/s  (%.1f GFlop/s, %.3f ms per sweep)\n", t.mpoints_per_s,
              t.gflops, t.seconds * 1e3);
  std::printf("  load efficiency %.1f%%, bottleneck %s\n", t.load_efficiency * 100.0,
              t.bottleneck.c_str());
  std::printf("  occupancy: %d blocks/SM (%d warps, limited by %s), %d stage(s)\n",
              t.occupancy.active_blocks, t.occupancy.active_warps(),
              gpusim::to_string(t.occupancy.limiter).c_str(), t.stages);
}

/// --verify: runs every verification pillar (CPU-reference oracle,
/// differential vs the forward-plane baseline, metamorphic relations,
/// trace audit) on a reduced 2x2-tile grid.  Throws DataCorruptionError
/// on any mismatch, so the process exits with code 3.  The undocumented
/// --sabotage halo knob arms a deliberate off-by-one halo defect — the
/// negative self-test proving the gate actually rejects broken kernels.
template <typename T>
void verify_config(Method method, int order, const LaunchConfig& cfg,
                   const gpusim::DeviceSpec& dev, const Args& args) {
  verify::FuzzSample sample;
  sample.method = method;
  sample.order = order;
  sample.config = cfg;
  sample.double_precision = sizeof(T) == 8;
  sample.nx = cfg.tile_w() * 2;
  sample.ny = cfg.tile_h() * 2;
  sample.nz = order + 2 > 8 ? order + 2 : 8;
  // The degree-N pipeline needs nz > N*r planes to drain into; keep the
  // reduced grid deep enough that --verify exercises the kernel instead
  // of tripping the loud depth rejection.
  if (cfg.tb > 1 && sample.nz <= cfg.tb * (order / 2)) {
    sample.nz = cfg.tb * (order / 2) + 2;
  }
  if (args.get("sabotage", "none") == "halo") {
    sample.sabotage = verify::Sabotage::HaloOffByOne;
  }
  const verify::FuzzVerdict v =
      verify::run_sample(sample, dev, ExecPolicy{args.geti("threads", 0)});
  if (!v.pass) {
    std::printf("verify: FAILED %s\n  %s\n", sample.to_line().c_str(),
                v.detail.c_str());
    throw DataCorruptionError("verification failed: " + v.detail);
  }
  std::printf("verify: ok (%s)\n", sample.to_line().c_str());
}

template <typename T>
int cmd_run(const Args& args) {
  const Method method = method_by_name(args.get("method", "fullslice"));
  const gpusim::DeviceSpec dev = device_by_name(args.get("device", "gtx580"));
  const int order = args.geti("order", 2);
  const LaunchConfig cfg = config_from(args, method, sizeof(T) == 8);
  const auto kernel =
      make_kernel<T>(method, StencilCoeffs::diffusion(order / 2), cfg);
  Governance gov(args);
  if (args.has("fault-plan") || args.has("abft") || gov.token() != nullptr ||
      gov.mem() != nullptr) {
    // Functional execution under the hardened runner: inject the plan (if
    // any), retry retryable faults, and either verify the output against
    // the reference or — with --abft — detect and surgically repair
    // corruption online via the plane-checksum layer.
    std::optional<gpusim::FaultInjector> injector;
    if (args.has("fault-plan")) {
      injector.emplace(gpusim::FaultPlan::parse(args.get("fault-plan", "")));
    }
    Grid3<T> in = make_grid_for(*kernel, grid_from(args));
    Grid3<T> out = make_grid_for(*kernel, grid_from(args));
    in.fill_with_halo([](int i, int j, int k) {
      return static_cast<T>(((i * 37 + j * 17 + k * 7) % 101) - 50) / T(50);
    });
    RunOptions ro;
    ro.faults = injector ? &*injector : nullptr;
    ro.policy = ExecPolicy{args.geti("threads", 0)};
    ro.policy.cancel = gov.token();
    ro.abft.enabled = args.has("abft");
    ro.mem_budget = gov.mem();
    const RunReport report = run_kernel_guarded(*kernel, in, out, dev, ro);
    std::printf("guarded run: %s after %d attempt(s)%s; %zu fault site(s) injected\n",
                report.status.ok() ? "ok" : report.status.to_string().c_str(),
                report.attempts, report.verified ? ", output verified" : "",
                injector ? injector->event_count() : 0);
    if (report.abft.enabled) {
      std::printf("abft: %llu plane checksum(s) checked, %llu flagged, "
                  "%d block(s) surgically repaired\n",
                  static_cast<unsigned long long>(report.abft.planes_checked),
                  static_cast<unsigned long long>(report.abft.planes_flagged),
                  report.abft.blocks_repaired);
    }
    if (!report.status.ok()) raise(report.status);
  }
  if (args.has("verify") || args.has("sabotage")) {
    verify_config<T>(method, order, cfg, dev, args);
  }
  const auto t = time_kernel(*kernel, dev, grid_from(args));
  print_timing(kernel->name() + " " + cfg.to_string() + " order " +
                   std::to_string(order) + " on " + dev.name,
               t);
  return t.valid ? 0 : 1;
}

template <typename T>
int cmd_tune(const Args& args) {
  const Method method = method_by_name(args.get("method", "fullslice"));
  const gpusim::DeviceSpec dev = device_by_name(args.get("device", "gtx580"));
  const int order = args.geti("order", 2);
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const Extent3 grid = grid_from(args);
  // --threads 1 pins the sweep to the serial path (reproducible wall-clock
  // benchmarking); 0 = all hardware threads.  Results are identical either way.
  Governance gov(args);
  // The sweep always runs under a cancel token: --deadline-ms arms one
  // with a deadline, and either way SIGINT/SIGTERM cancel it (graceful
  // interruption with the journal intact) instead of killing the process.
  CancelToken signal_cancel;
  CancelToken* cancel = gov.cancel ? &*gov.cancel : &signal_cancel;
  SignalCancelScope signal_scope(cancel);
  autotune::TuneOptions topt;
  topt.policy = ExecPolicy{args.geti("threads", 0)};
  topt.policy.cancel = cancel;
  topt.max_attempts = args.geti("retries", 3);
  topt.checkpoint_path = args.get("checkpoint", "");
  topt.resume = args.has("resume");
  topt.abft = args.has("abft");
  topt.mem_budget = gov.mem();
  std::optional<gpusim::FaultInjector> injector;
  if (args.has("fault-plan")) {
    injector.emplace(gpusim::FaultPlan::parse(args.get("fault-plan", "")));
    topt.faults = &*injector;
  }
  // Undocumented self-test knob: raise a real SIGINT from inside the
  // sweep once N fresh measurements are journaled — proves the handler
  // path (cancel -> flush -> exit 5 -> --resume) without an external kill.
  if (args.has("raise-sigint-after")) {
    const auto after = static_cast<std::size_t>(args.geti("raise-sigint-after", 1));
    topt.on_journal_append = [after](std::size_t fresh) {
      if (fresh == after) (void)std::raise(SIGINT);
    };
  }

  // --temporal-degree N widens the search space with temporal-blocking
  // degrees 1..N (full-slice only); the default space is the paper's
  // single-step one.
  autotune::SearchSpace space;
  const int max_degree = args.geti("temporal-degree", 1);
  if (max_degree < 1 || max_degree > 8) {
    throw InvalidConfigError("--temporal-degree must be in [1, 8], got " +
                             std::to_string(max_degree));
  }
  space.set_max_temporal_degree(max_degree);

  autotune::TuneResult result;
  if (args.has("beta")) {
    const double beta = std::atof(args.get("beta", "0.05").c_str());
    result = autotune::model_guided_tune<T>(method, cs, dev, grid, beta, space, topt);
    std::printf("model-guided tuning (beta = %.0f%%): executed %zu of %zu candidates\n",
                beta * 100.0, result.executed, result.candidates);
  } else {
    result = autotune::exhaustive_tune<T>(method, cs, dev, grid, space, topt);
    std::printf("exhaustive tuning: executed %zu configurations\n", result.executed);
  }
  if (result.resumed != 0) {
    std::printf("resumed %zu measurement(s) from %s\n", result.resumed,
                topt.checkpoint_path.c_str());
  }
  if (result.faulted != 0 || result.quarantined != 0) {
    std::printf("fault report: %zu candidate(s) faulted, %zu quarantined, "
                "%zu corruption(s) contained online\n",
                result.faulted, result.quarantined, result.sdc_events);
    for (const autotune::QuarantineRecord& q : result.quarantine) {
      std::printf("  quarantined %s after %d attempt(s): %s\n",
                  q.config.to_string().c_str(), q.attempts,
                  q.reason.to_string().c_str());
    }
  }
  if (!result.found()) {
    std::printf("no valid configuration found\n");
    return 1;
  }
  // --verify: gate the winner through the verification pillars before
  // reporting it — a tuner that crowns a wrong-answer kernel exits 3.
  if (args.has("verify")) verify_config<T>(method, order, result.best.config, dev, args);
  print_timing("best " + std::string(to_string(method)) + " " +
                   result.best.config.to_string(),
               result.best.timing);
  return 0;
}

template <typename T>
int cmd_model(const Args& args) {
  const Method method = method_by_name(args.get("method", "fullslice"));
  const gpusim::DeviceSpec dev = device_by_name(args.get("device", "gtx580"));
  perfmodel::ModelInput input;
  input.method = method;
  input.grid = grid_from(args);
  input.radius = args.geti("order", 2) / 2;
  input.config = config_from(args, method, sizeof(T) == 8);
  input.is_double = sizeof(T) == 8;
  const perfmodel::ModelResult r = perfmodel::evaluate(dev, input);
  if (!r.valid) {
    std::printf("model: invalid configuration (%s)\n", r.invalid_reason.c_str());
    return 1;
  }
  std::printf("section-VI model prediction for %s %s on %s:\n", to_string(method),
              input.config.to_string().c_str(), dev.name.c_str());
  std::printf("  %.1f MPoint/s  (Blks %ld, ActBlks %d, Stages %d, RemBlks %d)\n",
              r.mpoints_per_s, r.blks, r.act_blks, r.stages, r.rem_blks);
  std::printf("  T_m %.0f cycles, T_c %.0f cycles, T_s %.0f, T_l %.0f\n", r.t_m_cycles,
              r.t_c_cycles, r.t_s_cycles, r.t_l_cycles);
  return 0;
}

template <typename T>
int cmd_codegen(const Args& args) {
  codegen::CudaKernelSpec spec;
  spec.method = method_by_name(args.get("method", "fullslice"));
  spec.radius = args.geti("order", 2) / 2;
  spec.is_double = sizeof(T) == 8;
  spec.config = config_from(args, spec.method, spec.is_double);
  const std::string out = args.get("o", spec.name() + ".cu");
  report::write_file(out, codegen::generate_file(spec, grid_from(args)));
  std::printf("wrote %s (compile with: nvcc -O3 %s -o %s)\n", out.c_str(), out.c_str(),
              spec.name().c_str());
  return 0;
}

int cmd_devices() {
  report::Table table({"Name", "Arch", "SMs", "Clock GHz", "Peak BW GB/s",
                       "Achieved BW GB/s", "Peak SP GFlop/s", "Peak DP GFlop/s"});
  for (const auto& d :
       {gpusim::DeviceSpec::geforce_gtx580(), gpusim::DeviceSpec::geforce_gtx680(),
        gpusim::DeviceSpec::tesla_c2070(), gpusim::DeviceSpec::tesla_c2050()}) {
    table.add_row({d.name, d.arch == gpusim::Arch::Fermi ? "Fermi" : "Kepler",
                   std::to_string(d.sm_count), report::fmt(d.clock_ghz, 3),
                   report::fmt(d.peak_bw_gbs, 1), report::fmt(d.achieved_bw_gbs, 1),
                   report::fmt(d.peak_sp_gflops(), 0),
                   report::fmt(d.peak_dp_gflops(), 0)});
  }
  std::fputs(table.render("Simulated devices (Table III)").c_str(), stdout);
  return 0;
}

int usage() {
  std::fputs(
      "usage: inplane <command> [--key value ...]\n"
      "commands:\n"
      "  devices                      list the simulated GPUs\n"
      "  run      time one configuration   (--method --order --device --tx --ty\n"
      "                                     --rx --ry [--vec] [--dp] [--nx --ny --nz]\n"
      "                                     [--temporal-degree N: advance N timesteps\n"
      "                                      per sweep, fullslice only]\n"
      "                                     [--fault-plan spec for a guarded run]\n"
      "                                     [--abft: online checksum detection +\n"
      "                                      surgical repair, no reference pass]\n"
      "                                     [--deadline-ms N: exit 5 when exceeded]\n"
      "                                     [--mem-budget bytes: degrade, never abort]\n"
      "                                     [--verify: oracle + metamorphic +\n"
      "                                      trace-audit gate, exit 3 on mismatch])\n"
      "  tune     auto-tune a method       (--method --order --device [--dp]\n"
      "                                     [--temporal-degree N: widen the search\n"
      "                                      space with degrees 1..N, N in [1, 8]]\n"
      "                                     [--verify: gate the winner, exit 3]\n"
      "                                     [--beta 0.05 for model-guided]\n"
      "                                     [--threads N, 0 = all cores, 1 = serial]\n"
      "                                     [--fault-plan spec] [--retries N]\n"
      "                                     [--abft: contain corruption in-place]\n"
      "                                     [--deadline-ms N] [--mem-budget bytes]\n"
      "                                     [--checkpoint file] [--resume];\n"
      "                                     SIGINT/SIGTERM cancel gracefully:\n"
      "                                     journal flushed, exit 5, resumable\n"
      "  model    section-VI prediction    (same keys as run)\n"
      "global flags:\n"
      "  --no-trace-memo    disable block-class trace memoization: trace every\n"
      "                     block instead of one representative per position\n"
      "                     class (also: INPLANE_NO_TRACE_MEMO=1 in the env)\n"
      "  codegen  emit a CUDA .cu file     (--method --order --tx --ty ... [--o f])\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  const bool dp = args.has("dp");
  // Process-wide: every tracing sweep this invocation performs (run,
  // tune --verify, trace-audit) takes the unmemoized block-by-block path.
  if (args.has("no-trace-memo")) kernels::set_trace_memo_enabled(false);
  try {
    if (cmd == "devices") return cmd_devices();
    if (cmd == "run") return dp ? cmd_run<double>(args) : cmd_run<float>(args);
    if (cmd == "tune") return dp ? cmd_tune<double>(args) : cmd_tune<float>(args);
    if (cmd == "model") return dp ? cmd_model<double>(args) : cmd_model<float>(args);
    if (cmd == "codegen") {
      return dp ? cmd_codegen<double>(args) : cmd_codegen<float>(args);
    }
  } catch (const std::exception& e) {
    const Status st = status_of(e);
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return exit_code(st);
  }
  return usage();
}
