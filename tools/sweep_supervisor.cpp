// sweep_supervisor — crash-tolerant distributed tuning sweeps.
//
//   sweep_supervisor --workers 4 --partition candidates
//       --checkpoint-dir /tmp/sweep --method fullslice --order 8
//       --device gtx580 [--kind model --beta 0.05] [--dp]
//       [--deadline-ms 60000] [--resume]
//       [--worker-fault-plan "kill@2:w0"] [--faults "seed=1; ..."]
//
// The same binary re-enters as a worker process via the hidden --worker
// mode; the supervisor spawns `--workers` of them, tracks their
// heartbeats, respawns crashed ones (their shard journals make respawns
// resume, not re-measure), reshards dead workers' leftovers onto
// survivors, and merges the shard journals into the same best config —
// bit for bit — as the single-process `inplane tune` sweep.
//
// Exit codes extend the repo taxonomy: 0 ok, 2 invalid configuration,
// 4 I/O failure, 5 deadline exceeded / cancelled, 6 sweep incomplete
// (every worker slot died and work was left unmeasured), 1 other.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/status.hpp"
#include "distributed/supervisor.hpp"
#include "distributed/worker.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace inplane;
using namespace inplane::distributed;

constexpr int kExitIncomplete = 6;

struct Args {
  std::map<std::string, std::string> kv;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  [[nodiscard]] int geti(const std::string& key, int dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::atoi(it->second.c_str());
  }
  [[nodiscard]] double getf(const std::string& key, double dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const { return kv.count(key) > 0; }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.kv[key] = argv[++i];
    } else {
      args.kv[key] = "1";  // flag
    }
  }
  return args;
}

SweepSpec spec_from(const Args& args) {
  SweepSpec spec;
  spec.method = args.get("method", "fullslice");
  spec.device = args.get("device", "gtx580");
  spec.extent = {args.geti("nx", 512), args.geti("ny", 512), args.geti("nz", 64)};
  spec.order = args.geti("order", 8);
  spec.double_precision = args.has("dp");
  spec.kind = args.get("kind", "exhaustive");
  spec.beta = args.getf("beta", 0.05);
  return spec;
}

/// This binary's own path, for respawning itself as workers.  argv[0] is
/// the fallback; /proc/self/exe wins when available because argv[0] may
/// be a bare name the spawn shim will not PATH-search.
std::string self_exe(const char* argv0) {
#ifndef _WIN32
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
#endif
  return std::string(argv0);
}

int run_worker_mode(const Args& args) {
  WorkerArgs w;
  w.spec = spec_from(args);
  w.mode = partition_mode_from(args.get("partition", "candidates"));
  w.workers = args.geti("workers", 1);
  w.slot = args.geti("slot", 0);
  w.generation = args.geti("generation", 0);
  w.shard_path = args.get("shard", "");
  w.journal_path = args.get("journal", "");
  w.heartbeat_path = args.get("heartbeat", "");
  w.fault_spec = args.get("worker-fault-plan", "");
  w.sim_fault_spec = args.get("faults", "");
  w.max_attempts = args.geti("max-attempts", 3);
  w.abft = args.has("abft");
  return run_worker(w);
}

void print_report(const SweepReport& report) {
  const autotune::TuneResult& r = report.result;
  if (r.found()) {
    std::printf("best (TX, TY, RX, RY) = %s  vec=%d\n",
                r.best.config.to_string().c_str(), r.best.config.vec);
    std::printf("  %.1f MPoint/s (%.3f ms per sweep)\n",
                r.best.timing.mpoints_per_s, r.best.timing.seconds * 1e3);
  } else {
    std::printf("no valid configuration measured\n");
  }
  std::printf(
      "sweep: %zu candidates, %zu executed, %zu quarantined, %zu resumed\n",
      r.candidates, r.executed, r.quarantined, report.resumed_entries);
  std::printf(
      "supervision: %zu spawned, %zu lost, %zu resharded, %zu merge dups\n",
      report.workers_spawned, report.workers_lost, report.candidates_resharded,
      report.journal_merge_dups);
  for (const WorkerAttribution& w : report.per_worker) {
    std::printf("  worker %d: %d spawn(s), %zu measured%s%s  [%s]\n", w.slot,
                w.spawns, w.measured, w.lost_process ? ", lost a process" : "",
                w.dead ? ", DEAD" : "", w.last_exit.c_str());
  }
  if (!report.complete) {
    std::printf("INCOMPLETE: %zu candidate(s) unmeasured (all assigned "
                "workers died)\n",
                report.unmeasured);
  }
}

int run_supervisor_mode(const Args& args, const char* argv0) {
  SupervisorOptions opts;
  opts.spec = spec_from(args);
  opts.workers = args.geti("workers", 2);
  opts.mode = partition_mode_from(args.get("partition", "candidates"));
  opts.checkpoint_dir = args.get("checkpoint-dir", "");
  opts.worker_exe = args.get("worker-exe", self_exe(argv0));
  opts.heartbeat_deadline_ms = args.getf("heartbeat-deadline-ms", 5000.0);
  opts.poll_interval_ms = args.getf("poll-interval-ms", 10.0);
  opts.retry_budget = args.geti("retry-budget", 2);
  opts.backoff_initial_ms = args.getf("backoff-ms", 50.0);
  opts.resume = args.has("resume");
  opts.worker_fault_spec = args.get("worker-fault-plan", "");
  opts.sim_fault_spec = args.get("faults", "");
  opts.max_attempts = args.geti("max-attempts", 3);
  opts.abft = args.has("abft");
  opts.internode_bw_gbs = args.getf("internode-bw-gbs", 1.0);
  opts.internode_latency_us = args.getf("internode-latency-us", 50.0);

  CancelToken deadline;
  if (args.has("deadline-ms")) {
    deadline.set_deadline_ms(args.getf("deadline-ms", 0.0));
    opts.cancel = &deadline;
  }
  if (args.has("metrics")) metrics::set_enabled(true);

  const SweepReport report = run_distributed_sweep(opts);
  print_report(report);
  if (args.has("metrics")) {
    for (const metrics::SnapshotEntry& e : metrics::Registry::global().snapshot()) {
      if (e.kind != metrics::SnapshotEntry::Kind::Histogram) {
        std::printf("%-44s %.0f\n", e.name.c_str(), e.value);
      }
    }
  }
  return report.complete ? 0 : kExitIncomplete;
}

void usage() {
  std::fputs(
      "sweep_supervisor — distributed, crash-tolerant tuning sweeps\n"
      "  --workers N              worker process count (default 2)\n"
      "  --partition MODE         candidates | slabs (default candidates)\n"
      "  --checkpoint-dir DIR     shard journals / heartbeats (required)\n"
      "  --method M --device D --order K --nx --ny --nz [--dp]\n"
      "  --kind exhaustive|model  sweep flavour (--beta F for model)\n"
      "  --deadline-ms MS         supervisor wall-clock budget (exit 5)\n"
      "  --resume                 adopt journals from an interrupted run\n"
      "  --heartbeat-deadline-ms  hung-worker detection (default 5000)\n"
      "  --retry-budget N         respawns per worker slot (default 2)\n"
      "  --backoff-ms MS          initial respawn backoff (default 50)\n"
      "  --worker-fault-plan P    kill@K[:wI][:gI|:g*] | hang@K | corrupt@K |\n"
      "                           slow=MS   (';'-separated; test harness)\n"
      "  --faults P               gpusim measurement fault plan\n"
      "  --metrics                print the metrics registry on exit\n"
      "exit codes: 0 ok, 2 bad config, 4 I/O, 5 deadline, 6 incomplete\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv, 1);
  try {
    if (args.has("help")) {
      usage();
      return 0;
    }
    if (args.has("worker")) {
      return run_worker_mode(args);
    }
    if (!args.has("checkpoint-dir")) {
      usage();
      throw InvalidConfigError("--checkpoint-dir is required");
    }
    return run_supervisor_mode(args, argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_supervisor: %s\n", e.what());
    return exit_code(status_of(e));
  }
}
