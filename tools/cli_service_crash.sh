#!/bin/bash
# Crash-recovery drill for the tuner daemon's wisdom cache.
#
#   cli_service_crash.sh <inplane_tuned-binary>
#
# 1. A daemon armed with --torn-kill-after 1 serves one tune (key A,
#    journaled cleanly), then hard-exits 70 halfway through journaling
#    key B — a kill -9 mid-write, deterministically.
# 2. A second daemon on the same wisdom file must (a) warn about and
#    truncate the torn tail, (b) answer key A from cache with *no* sweep,
#    (c) re-sweep key B cleanly, and (d) exit 0 on SHUTDOWN.
set -eu

tuned=$1
[ -x "$tuned" ] || { echo "cli_service_crash: $tuned not executable" >&2; exit 2; }

dir=$(mktemp -d /tmp/tuned_crash.XXXXXX)
trap 'kill $daemon_pid 2>/dev/null || true; rm -rf "$dir"' EXIT
sock=$dir/s
wisdom=$dir/wisdom.bin
key_a="method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 kind=model beta=0.05"
key_b="method=classical device=gtx580 order=2 prec=sp nx=64 ny=32 nz=8 kind=model beta=0.05"

wait_for_daemon() {
  for _ in $(seq 1 100); do
    if "$tuned" ping --socket "$sock" >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "cli_service_crash: daemon never became reachable" >&2
  return 1
}

# --- Phase 1: daemon that tears its second wisdom append and dies 70.
"$tuned" serve --socket "$sock" --wisdom "$wisdom" --torn-kill-after 1 \
  >"$dir/daemon1.log" 2>&1 &
daemon_pid=$!
wait_for_daemon

"$tuned" tune --socket "$sock" --key "$key_a" >"$dir/a1.out"
grep -q "source=swept" "$dir/a1.out" || {
  echo "cli_service_crash: first tune of key A should sweep" >&2; exit 1; }

# This request dies mid-journal-write; the client sees the connection drop.
"$tuned" tune --socket "$sock" --key "$key_b" >"$dir/b1.out" 2>&1 && {
  echo "cli_service_crash: tune of key B should have lost its daemon" >&2; exit 1; }

rc=0
wait $daemon_pid || rc=$?
[ "$rc" -eq 70 ] || {
  echo "cli_service_crash: daemon 1 exited $rc, expected the torn-write 70" >&2
  exit 1
}
[ -s "$wisdom" ] || { echo "cli_service_crash: wisdom file missing" >&2; exit 1; }

# --- Phase 2: recovery daemon on the same wisdom file.
"$tuned" serve --socket "$sock" --wisdom "$wisdom" >"$dir/daemon2.log" 2>&1 &
daemon_pid=$!
wait_for_daemon

grep -q "torn byte" "$dir/daemon2.log" || {
  echo "cli_service_crash: recovery daemon did not report the torn tail" >&2
  cat "$dir/daemon2.log" >&2
  exit 1
}

"$tuned" tune --socket "$sock" --key "$key_a" >"$dir/a2.out"
grep -q "source=hit" "$dir/a2.out" || {
  echo "cli_service_crash: key A should be served from the recovered cache" >&2
  cat "$dir/a2.out" >&2
  exit 1
}
"$tuned" tune --socket "$sock" --key "$key_b" >"$dir/b2.out"
grep -q "source=swept" "$dir/b2.out" || {
  echo "cli_service_crash: torn key B should re-sweep cleanly" >&2; exit 1; }

# Both daemons must agree bit-for-bit on key A (hit == original sweep).
entry1=$(grep -o "entry=[0-9a-f]*" "$dir/a1.out")
entry2=$(grep -o "entry=[0-9a-f]*" "$dir/a2.out")
[ -n "$entry1" ] && [ "$entry1" = "$entry2" ] || {
  echo "cli_service_crash: recovered entry differs from the swept one" >&2; exit 1; }

"$tuned" shutdown --socket "$sock" >/dev/null
rc=0
wait $daemon_pid || rc=$?
[ "$rc" -eq 0 ] || {
  echo "cli_service_crash: clean SHUTDOWN should exit 0, got $rc" >&2; exit 1; }

echo "cli_service_crash: torn write recovered, cache hit bit-identical, clean exit"
