// Parallel execution engine scaling: wall-clock speedup of an exhaustive
// auto-tune sweep and of a functional run_kernel as a function of the
// ExecPolicy thread count, with a determinism cross-check (the selected
// best config and the aggregated TraceStats must be bit-identical at
// every thread count).
//
//   $ ./bench_parallel_scaling [max_threads] [--smoke]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"
#include "report/stats.hpp"

namespace {

using namespace inplane;

std::vector<int> thread_counts(int max_threads) {
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads) counts.push_back(max_threads);
  return counts;
}

int run(bench::Session& session, int max_threads) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);

  // --- exhaustive tune sweep (the Table-4 workload). -----------------------
  report::Table tune({"Threads", "Tune wall [s]", "Speedup", "Executed", "Best",
                      "Best MPt/s"});
  double tune_serial_s = 0.0;
  double tune_best_speedup = 1.0;
  autotune::TuneResult reference;
  bool deterministic = true;
  for (int t : thread_counts(max_threads)) {
    const report::Stopwatch watch;
    const autotune::TuneResult r = autotune::exhaustive_tune<float>(
        kernels::Method::InPlaneFullSlice, cs, dev, session.grid(), {}, ExecPolicy{t});
    const double wall = watch.seconds();
    if (t == 1) {
      tune_serial_s = wall;
      reference = r;
    } else if (r.best.config != reference.best.config ||
               r.best.timing.mpoints_per_s != reference.best.timing.mpoints_per_s ||
               r.executed != reference.executed) {
      deterministic = false;
    }
    tune_best_speedup = std::max(tune_best_speedup, tune_serial_s / wall);
    tune.add_row({std::to_string(t), report::fmt(wall, 3),
                  report::fmt(tune_serial_s / wall, 2), std::to_string(r.executed),
                  r.best.config.to_string(),
                  report::fmt(r.best.timing.mpoints_per_s, 1)});
  }
  session.emit(tune, "exhaustive tune wall-clock vs ExecPolicy threads",
               "parallel_scaling_tune");

  // --- functional run_kernel sweep (one full grid sweep, ExecMode::Both). --
  const kernels::LaunchConfig cfg{32, 8, 1, 2, 4};
  const auto kernel =
      kernels::make_kernel<float>(kernels::Method::InPlaneFullSlice, cs, cfg);
  const Extent3 extent = session.smoke() ? Extent3{128, 64, 8} : Extent3{256, 256, 64};
  Grid3<float> in = kernels::make_grid_for(*kernel, extent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<float>(std::sin(0.1 * i) + 0.05 * j + 0.01 * k);
  });

  report::Table runk({"Threads", "Run wall [s]", "Speedup", "Load instrs"});
  double run_serial_s = 0.0;
  gpusim::TraceStats ref_stats;
  for (int t : thread_counts(max_threads)) {
    Grid3<float> out = kernels::make_grid_for(*kernel, extent);
    const report::Stopwatch watch;
    const gpusim::TraceStats stats = kernels::run_kernel(
        *kernel, in, out, dev, gpusim::ExecMode::Both, ExecPolicy{t});
    const double wall = watch.seconds();
    if (t == 1) {
      run_serial_s = wall;
      ref_stats = stats;
    } else if (stats.load_instrs != ref_stats.load_instrs ||
               stats.bytes_transferred() != ref_stats.bytes_transferred() ||
               stats.flops != ref_stats.flops) {
      deterministic = false;
    }
    runk.add_row({std::to_string(t), report::fmt(wall, 3),
                  report::fmt(run_serial_s / wall, 2),
                  std::to_string(stats.load_instrs)});
  }
  session.emit(runk, "run_kernel wall-clock vs ExecPolicy threads",
               "parallel_scaling_run_kernel");

  std::printf("determinism cross-check: %s\n",
              deterministic ? "identical results at every thread count"
                            : "MISMATCH between thread counts");
  session.set_config("max_threads", std::to_string(max_threads));
  session.headline("deterministic", deterministic ? 1.0 : 0.0, "bool");
  session.headline("tune_speedup_best", tune_best_speedup, "x",
                   /*higher_is_better=*/true, /*noisy=*/true);
  const int finish = session.finish();
  return deterministic ? finish : 1;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("parallel_scaling", argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  int max_threads = !session.args().empty() ? std::atoi(session.args()[0].c_str())
                                            : static_cast<int>(hw ? hw : 4);
  if (max_threads < 1) max_threads = 1;
  if (max_threads < 4 && !session.smoke()) {
    max_threads = 4;  // acceptance point: 4 threads vs 1
  }
  return run(session, max_threads);
}
