// Parallel execution engine scaling: wall-clock speedup of an exhaustive
// auto-tune sweep and of a functional run_kernel as a function of the
// ExecPolicy thread count, with a determinism cross-check (the selected
// best config and the aggregated TraceStats must be bit-identical at
// every thread count).
//
//   $ ./bench_parallel_scaling [max_threads]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

namespace {

using namespace inplane;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<int> thread_counts(int max_threads) {
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads) counts.push_back(max_threads);
  return counts;
}

int run(int max_threads) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);

  // --- exhaustive tune sweep (the Table-4 workload). -----------------------
  report::Table tune({"Threads", "Tune wall [s]", "Speedup", "Executed", "Best",
                      "Best MPt/s"});
  double tune_serial_s = 0.0;
  autotune::TuneResult reference;
  bool deterministic = true;
  for (int t : thread_counts(max_threads)) {
    const auto t0 = Clock::now();
    const autotune::TuneResult r = autotune::exhaustive_tune<float>(
        kernels::Method::InPlaneFullSlice, cs, dev, bench::kGrid, {}, ExecPolicy{t});
    const double wall = seconds_since(t0);
    if (t == 1) {
      tune_serial_s = wall;
      reference = r;
    } else if (r.best.config != reference.best.config ||
               r.best.timing.mpoints_per_s != reference.best.timing.mpoints_per_s ||
               r.executed != reference.executed) {
      deterministic = false;
    }
    tune.add_row({std::to_string(t), report::fmt(wall, 3),
                  report::fmt(tune_serial_s / wall, 2), std::to_string(r.executed),
                  r.best.config.to_string(),
                  report::fmt(r.best.timing.mpoints_per_s, 1)});
  }
  bench::emit(tune, "exhaustive tune wall-clock vs ExecPolicy threads",
              "parallel_scaling_tune");

  // --- functional run_kernel sweep (one full grid sweep, ExecMode::Both). --
  const kernels::LaunchConfig cfg{32, 8, 1, 2, 4};
  const auto kernel =
      kernels::make_kernel<float>(kernels::Method::InPlaneFullSlice, cs, cfg);
  const Extent3 extent{256, 256, 64};
  Grid3<float> in = kernels::make_grid_for(*kernel, extent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<float>(std::sin(0.1 * i) + 0.05 * j + 0.01 * k);
  });

  report::Table runk({"Threads", "Run wall [s]", "Speedup", "Load instrs"});
  double run_serial_s = 0.0;
  gpusim::TraceStats ref_stats;
  for (int t : thread_counts(max_threads)) {
    Grid3<float> out = kernels::make_grid_for(*kernel, extent);
    const auto t0 = Clock::now();
    const gpusim::TraceStats stats = kernels::run_kernel(
        *kernel, in, out, dev, gpusim::ExecMode::Both, ExecPolicy{t});
    const double wall = seconds_since(t0);
    if (t == 1) {
      run_serial_s = wall;
      ref_stats = stats;
    } else if (stats.load_instrs != ref_stats.load_instrs ||
               stats.bytes_transferred() != ref_stats.bytes_transferred() ||
               stats.flops != ref_stats.flops) {
      deterministic = false;
    }
    runk.add_row({std::to_string(t), report::fmt(wall, 3),
                  report::fmt(run_serial_s / wall, 2),
                  std::to_string(stats.load_instrs)});
  }
  bench::emit(runk, "run_kernel wall-clock vs ExecPolicy threads",
              "parallel_scaling_run_kernel");

  std::printf("determinism cross-check: %s\n",
              deterministic ? "identical results at every thread count"
                            : "MISMATCH between thread counts");
  return deterministic ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned hw = std::thread::hardware_concurrency();
  int max_threads = argc > 1 ? std::atoi(argv[1]) : static_cast<int>(hw ? hw : 4);
  if (max_threads < 1) max_threads = 1;
  if (max_threads < 4) max_threads = 4;  // acceptance point: 4 threads vs 1
  return run(max_threads);
}
