// Table IV: full auto-tuning of the in-plane full-slice method with both
// thread and register blocking — optimal (TX, TY, RX, RY), MPoint/s and
// speedup over nvstencil, for SP and DP, orders 2-12, on all three GPUs.
//
// Expected shape: SP speedups ~1.3-1.9 decreasing with stencil order; DP
// speedups markedly smaller (down to ~1.05 at order 12 where the kernels
// go compute-bound); optimal blocking factors shrinking as the order (and
// with it register pressure) grows.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using namespace inplane::autotune;

template <typename T>
void precision_rows(report::Table& table) {
  for (const auto& dev : gpusim::paper_devices()) {
    for (int order : paper_stencil_orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<T>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double base = time_kernel(*nv, dev, bench::kGrid).mpoints_per_s;
      const TuneResult t =
          exhaustive_tune<T>(Method::InPlaneFullSlice, cs, dev, bench::kGrid);
      table.add_row({bench::precision_name<T>(), std::to_string(order), dev.name,
                     t.best.config.to_string(),
                     report::fmt(t.best.timing.mpoints_per_s, 1),
                     report::fmt(t.best.timing.mpoints_per_s / base, 2),
                     t.best.timing.bottleneck,
                     std::to_string(t.best.timing.occupancy.active_blocks)});
    }
  }
}

}  // namespace

int main() {
  report::Table table({"Prec", "Order", "GPU", "Optimal Param.", "MPoint/s",
                       "Speedup", "Bottleneck", "ActBlks"});
  precision_rows<float>(table);
  precision_rows<double>(table);
  inplane::bench::emit(table,
                       "Table IV: Auto-tuning results, in-plane full-slice with "
                       "thread + register blocking",
                       "table4_autotune");
  return 0;
}
