// Table IV: full auto-tuning of the in-plane full-slice method with both
// thread and register blocking — optimal (TX, TY, RX, RY), MPoint/s and
// speedup over nvstencil, for SP and DP, orders 2-12, on all three GPUs.
//
// Expected shape: SP speedups ~1.3-1.9 decreasing with stencil order; DP
// speedups markedly smaller (down to ~1.05 at order 12 where the kernels
// go compute-bound); optimal blocking factors shrinking as the order (and
// with it register pressure) grows.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using namespace inplane::autotune;

template <typename T>
void precision_rows(bench::Session& session, report::Table& table) {
  double speedup_sum = 0.0;
  int n = 0;
  for (const auto& dev : session.devices()) {
    for (int order : session.orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<T>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double base = time_kernel(*nv, dev, session.grid()).mpoints_per_s;
      const TuneResult t =
          exhaustive_tune<T>(Method::InPlaneFullSlice, cs, dev, session.grid());
      table.add_row({bench::precision_name<T>(), std::to_string(order), dev.name,
                     t.best.config.to_string(),
                     report::fmt(t.best.timing.mpoints_per_s, 1),
                     report::fmt(t.best.timing.mpoints_per_s / base, 2),
                     t.best.timing.bottleneck,
                     std::to_string(t.best.timing.occupancy.active_blocks)});
      speedup_sum += t.best.timing.mpoints_per_s / base;
      n += 1;
    }
  }
  if (n > 0) {
    session.headline(std::string("speedup_mean_") +
                         (sizeof(T) == 8 ? "dp" : "sp"),
                     speedup_sum / n, "x");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("table4_autotune", argc, argv);
  report::Table table({"Prec", "Order", "GPU", "Optimal Param.", "MPoint/s",
                       "Speedup", "Bottleneck", "ActBlks"});
  precision_rows<float>(session, table);
  precision_rows<double>(session, table);
  session.emit(table,
               "Table IV: Auto-tuning results, in-plane full-slice with "
               "thread + register blocking");
  return session.finish();
}
