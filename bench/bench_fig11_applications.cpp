// Table V + Fig. 11: the six application stencils — grid counts, and the
// performance/speedup of the tuned in-plane full-slice method against the
// nvstencil baseline, SP and DP, on the GeForce GTX580.
//
// Expected shape: Laplacian the largest speedup (~1.8x, one input and one
// output grid); Hyperthermia the smallest (~1x — 9 of its 11 grids carry
// spatially varying coefficients whose traffic the in-plane method cannot
// reduce); everything else in between; DP compressed towards 1.

#include <cstdio>

#include "apps/app_kernel.hpp"
#include "autotune/search_space.hpp"
#include "bench_common.hpp"

namespace {

using namespace inplane;
using namespace inplane::apps;

template <typename T>
void app_rows(bench::Session& session, report::Table& table,
              const gpusim::DeviceSpec& dev) {
  autotune::SearchSpace space;
  double speedup_sum = 0.0;
  int n = 0;
  for (const AppFormula& f : paper_apps()) {
    const AppKernel<T> nv(f, AppMethod::ForwardPlane,
                          kernels::LaunchConfig::nvstencil_default());
    const double base = time_app_kernel(nv, dev, session.grid()).mpoints_per_s;
    double best = 0.0;
    kernels::LaunchConfig best_cfg;
    for (const auto& cfg :
         space.enumerate(dev, session.grid(), kernels::Method::InPlaneFullSlice,
                         std::max(f.radius(), 1), sizeof(T),
                         autotune::default_vec(kernels::Method::InPlaneFullSlice,
                                               sizeof(T)))) {
      const AppKernel<T> k(f, AppMethod::InPlaneFullSlice, cfg);
      const auto t = time_app_kernel(k, dev, session.grid());
      if (t.valid && t.mpoints_per_s > best) {
        best = t.mpoints_per_s;
        best_cfg = cfg;
      }
    }
    table.add_row({bench::precision_name<T>(), f.name(),
                   std::to_string(f.n_inputs()), std::to_string(f.n_outputs()),
                   report::fmt(base, 0), report::fmt(best, 0),
                   best_cfg.to_string(), report::fmt(best / base, 2) + "x"});
    speedup_sum += best / base;
    n += 1;
  }
  if (n > 0) {
    session.headline(std::string("app_speedup_mean_") +
                         (sizeof(T) == 8 ? "dp" : "sp"),
                     speedup_sum / n, "x");
  }
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("fig11_applications", argc, argv);
  const auto dev = inplane::gpusim::DeviceSpec::geforce_gtx580();
  inplane::report::Table table({"Prec", "Stencil", "In", "Out", "nvstencil MPt/s",
                                "in-plane MPt/s", "Optimal Param.", "Speedup"});
  app_rows<float>(session, table, dev);
  app_rows<double>(session, table, dev);
  session.emit(table,
               "Table V + Fig. 11: Application stencils, in-plane vs "
               "nvstencil on GeForce GTX580");
  return session.finish();
}
