// Google-benchmark micro-benchmarks of THIS library itself (real
// wall-clock, not simulated time): the CPU reference kernels, the warp
// coalescer, the shared-memory bank analysis, a full functional kernel
// sweep, and one timing-model evaluation — the costs that bound how fast
// the auto-tuner and the verification tests can run.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/reference.hpp"
#include "gpusim/coalescer.hpp"
#include "kernels/runner.hpp"
#include "perfmodel/model.hpp"

namespace {

using namespace inplane;

void BM_CpuReferenceNaive(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  Grid3<float> in = Grid3<float>::random({64, 64, 32}, cs.radius(), 1);
  Grid3<float> out({64, 64, 32}, cs.radius());
  for (auto _ : state) {
    apply_reference(in, out, cs);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.extent().volume()));
}
BENCHMARK(BM_CpuReferenceNaive)->Arg(2)->Arg(8);

void BM_CpuReferenceBlocked(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  Grid3<float> in = Grid3<float>::random({64, 64, 32}, cs.radius(), 1);
  Grid3<float> out({64, 64, 32}, cs.radius());
  for (auto _ : state) {
    apply_reference_blocked(in, out, cs, 8, 8);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.extent().volume()));
}
BENCHMARK(BM_CpuReferenceBlocked)->Arg(2)->Arg(8);

void BM_Coalescer(benchmark::State& state) {
  gpusim::LaneAccess lanes[32];
  for (int i = 0; i < 32; ++i) {
    lanes[i] = {static_cast<std::uint64_t>(1000 + i * 4), 4, true};
  }
  for (auto _ : state) {
    auto r = gpusim::coalesce(lanes, 128);
    benchmark::DoNotOptimize(r.transactions);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coalescer);

void BM_TracePlane(benchmark::State& state) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(
      kernels::Method::InPlaneFullSlice, cs, kernels::LaunchConfig{64, 4, 2, 2, 4});
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  for (auto _ : state) {
    auto t = kernel->trace_plane(dev, {512, 512, 256});
    benchmark::DoNotOptimize(t.load_instrs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracePlane);

void BM_FunctionalSweep(benchmark::State& state) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const auto kernel = kernels::make_kernel<float>(
      kernels::Method::InPlaneFullSlice, cs, kernels::LaunchConfig{16, 4, 1, 1, 4});
  Grid3<float> in = kernels::make_grid_for(*kernel, {32, 32, 8});
  Grid3<float> out = kernels::make_grid_for(*kernel, {32, 32, 8});
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  for (auto _ : state) {
    auto t = kernels::run_kernel(*kernel, in, out, dev);
    benchmark::DoNotOptimize(t.flops);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.extent().volume()));
}
BENCHMARK(BM_FunctionalSweep);

void BM_PerfModelEvaluate(benchmark::State& state) {
  perfmodel::ModelInput input;
  input.grid = {512, 512, 256};
  input.radius = 2;
  input.method = kernels::Method::InPlaneFullSlice;
  input.config = kernels::LaunchConfig{64, 4, 2, 2, 4};
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  for (auto _ : state) {
    auto r = perfmodel::evaluate(dev, input);
    benchmark::DoNotOptimize(r.mpoints_per_s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerfModelEvaluate);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the Session strips the common
// bench flags (--smoke, --results-dir) before google-benchmark sees the
// command line, and still emits the BENCH json.  Smoke mode narrows the
// run to one cheap micro-benchmark so the bench-smoke tier stays fast.
int main(int argc, char** argv) {
  inplane::bench::Session session("micro_library", argc, argv);
  std::vector<std::string> pass{argv[0]};
  for (const std::string& a : session.args()) pass.push_back(a);
  if (session.smoke()) pass.emplace_back("--benchmark_filter=BM_Coalescer");
  std::vector<char*> cargv;
  cargv.reserve(pass.size());
  for (std::string& s : pass) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return session.finish();
}
