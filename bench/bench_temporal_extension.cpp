// Extension bench (not a paper figure): 2-step temporal blocking on top of
// the in-plane method, the "3.5-D" direction of Nguyen et al. [14] cited
// in the paper's related work.  Compares point-UPDATES per second (grid
// points x timesteps) of the tuned temporal kernel against the tuned
// single-step full-slice kernel, across orders and devices.
//
// Expected shape: the temporal kernel wins where the single-step kernel is
// bandwidth-bound and the (2r+1)-plane shared ring still allows reasonable
// tiles (low orders); the advantage shrinks or inverts as the ring eats
// shared memory and the redundant ghost-zone compute grows with r.

#include <algorithm>
#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"
#include "temporal/temporal_kernel.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

/// Tunes the temporal kernel over the paper's search space; returns
/// point-updates per second (2x grid points per sweep).
double tune_temporal(const bench::Session& session, const gpusim::DeviceSpec& dev,
                     const StencilCoeffs& cs) {
  autotune::SearchSpace space;
  double best = 0.0;
  for (const auto& cfg : space.enumerate(dev, session.grid(),
                                         Method::InPlaneFullSlice, cs.radius(),
                                         sizeof(float), 4)) {
    const temporal::TemporalInPlaneKernel<float> k(cs, cfg);
    const auto t = temporal::time_temporal_kernel(k, dev, session.grid());
    if (t.valid) best = std::max(best, t.mpoints_per_s * 2.0);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("temporal_extension", argc, argv);
  report::Table table({"GPU", "Order", "single-step MUpdates/s",
                       "temporal (t=2) MUpdates/s", "temporal gain"});
  const std::vector<int> orders =
      session.smoke() ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 6, 8};
  double gain_sum = 0.0;
  int gain_n = 0;
  for (const auto& dev : session.devices()) {
    for (int order : orders) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const autotune::TuneResult single = autotune::exhaustive_tune<float>(
          Method::InPlaneFullSlice, cs, dev, session.grid());
      const double single_updates = single.best.timing.mpoints_per_s;
      const double temporal_updates = tune_temporal(session, dev, cs);
      if (temporal_updates == 0.0) {
        table.add_row({dev.name, std::to_string(order),
                       report::fmt(single_updates, 0), "no valid config", "-"});
        continue;
      }
      table.add_row({dev.name, std::to_string(order), report::fmt(single_updates, 0),
                     report::fmt(temporal_updates, 0),
                     report::fmt(temporal_updates / single_updates, 2) + "x"});
      gain_sum += temporal_updates / single_updates;
      gain_n += 1;
    }
  }
  if (gain_n > 0) {
    session.headline("temporal_gain_mean", gain_sum / gain_n, "x");
  }
  session.emit(table,
               "Extension: 2-step temporal blocking vs single-step "
               "in-plane full-slice (SP)");
  return session.finish();
}
