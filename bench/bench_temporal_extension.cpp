// Extension bench (not a paper figure): 2-step temporal blocking on top of
// the in-plane method, the "3.5-D" direction of Nguyen et al. [14] cited
// in the paper's related work.  Compares point-UPDATES per second (grid
// points x timesteps) of the tuned temporal kernel against the tuned
// single-step full-slice kernel, across orders and devices.
//
// Expected shape: the temporal kernel wins where the single-step kernel is
// bandwidth-bound and the (2r+1)-plane shared ring still allows reasonable
// tiles (low orders); the advantage shrinks or inverts as the ring eats
// shared memory and the redundant ghost-zone compute grows with r.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"
#include "temporal/temporal_kernel.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

/// Tunes the temporal kernel over the paper's search space; returns
/// point-updates per second (2x grid points per sweep).
double tune_temporal(const gpusim::DeviceSpec& dev, const StencilCoeffs& cs) {
  autotune::SearchSpace space;
  double best = 0.0;
  for (const auto& cfg : space.enumerate(dev, bench::kGrid,
                                         Method::InPlaneFullSlice, cs.radius(),
                                         sizeof(float), 4)) {
    const temporal::TemporalInPlaneKernel<float> k(cs, cfg);
    const auto t = temporal::time_temporal_kernel(k, dev, bench::kGrid);
    if (t.valid) best = std::max(best, t.mpoints_per_s * 2.0);
  }
  return best;
}

}  // namespace

int main() {
  report::Table table({"GPU", "Order", "single-step MUpdates/s",
                       "temporal (t=2) MUpdates/s", "temporal gain"});
  for (const auto& dev : gpusim::paper_devices()) {
    for (int order : {2, 4, 6, 8}) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const autotune::TuneResult single = autotune::exhaustive_tune<float>(
          Method::InPlaneFullSlice, cs, dev, bench::kGrid);
      const double single_updates = single.best.timing.mpoints_per_s;
      const double temporal_updates = tune_temporal(dev, cs);
      if (temporal_updates == 0.0) {
        table.add_row({dev.name, std::to_string(order),
                       report::fmt(single_updates, 0), "no valid config", "-"});
        continue;
      }
      table.add_row({dev.name, std::to_string(order), report::fmt(single_updates, 0),
                     report::fmt(temporal_updates, 0),
                     report::fmt(temporal_updates / single_updates, 2) + "x"});
    }
  }
  inplane::bench::emit(table,
                       "Extension: 2-step temporal blocking vs single-step "
                       "in-plane full-slice (SP)",
                       "temporal_extension");
  return 0;
}
