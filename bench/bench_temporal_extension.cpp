// Extension bench (not a paper figure): degree-N temporal blocking on top
// of the in-plane method, the "3.5-D" direction of Nguyen et al. [14]
// cited in the paper's related work, with the degree as a tuner dimension.
// Compares point-UPDATES per second (grid points x timesteps) of the tuned
// degree-N kernel, for each N in {2, 3, 4}, against the tuned single-step
// full-slice kernel, across orders and devices.
//
// Expected shape: temporal blocking wins where the single-step kernel is
// bandwidth-bound and the ring hierarchy still allows reasonable tiles
// (low orders, shallow degrees); the advantage shrinks or inverts as the
// rings eat shared memory and the redundant ghost-zone compute grows with
// r and N — deeper is not automatically better, which is exactly why the
// degree is tuned rather than fixed.

#include <algorithm>
#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

constexpr int kMaxDegree = 4;

/// Tunes one fixed degree over the paper's launch-parameter space;
/// returns the best point-updates per second (time_kernel already counts
/// grid points x N for the temporal kernel), or 0 when no configuration
/// of that degree is valid for the device/grid.
double tune_degree(const bench::Session& session, const gpusim::DeviceSpec& dev,
                   const StencilCoeffs& cs, int degree) {
  autotune::SearchSpace space;
  space.tb_values = {degree};
  double best = 0.0;
  for (const auto& cfg : space.enumerate(dev, session.grid(),
                                         Method::InPlaneFullSlice, cs.radius(),
                                         sizeof(float), 4)) {
    const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, cs, cfg);
    const auto t = time_kernel(*kernel, dev, session.grid());
    if (t.valid) best = std::max(best, t.mpoints_per_s);
  }
  return best;
}

std::string cell(double updates) {
  return updates > 0.0 ? report::fmt(updates, 0) : "no valid config";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("temporal_extension", argc, argv);
  report::Table table({"GPU", "Order", "single-step MUpdates/s",
                       "t=2 MUpdates/s", "t=3 MUpdates/s", "t=4 MUpdates/s",
                       "best degree", "best gain"});
  const std::vector<int> orders =
      session.smoke() ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 6, 8};
  double gain_sum = 0.0;
  int gain_n = 0;
  for (const auto& dev : session.devices()) {
    for (int order : orders) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const autotune::TuneResult single = autotune::exhaustive_tune<float>(
          Method::InPlaneFullSlice, cs, dev, session.grid());
      const double single_updates = single.best.timing.mpoints_per_s;

      int best_degree = 1;
      double best_updates = single_updates;
      std::vector<double> by_degree;
      for (int degree = 2; degree <= kMaxDegree; ++degree) {
        const double updates = tune_degree(session, dev, cs, degree);
        by_degree.push_back(updates);
        if (updates > best_updates) {
          best_updates = updates;
          best_degree = degree;
        }
      }

      table.add_row({dev.name, std::to_string(order), cell(single_updates),
                     cell(by_degree[0]), cell(by_degree[1]), cell(by_degree[2]),
                     std::to_string(best_degree),
                     report::fmt(best_updates / single_updates, 2) + "x"});
      gain_sum += best_updates / single_updates;
      gain_n += 1;
    }
  }
  if (gain_n > 0) {
    session.headline("temporal_gain_mean", gain_sum / gain_n, "x");
  }
  session.emit(table,
               "Extension: tuned degree-N temporal blocking (N in {2..4}) vs "
               "single-step in-plane full-slice (SP)");
  return session.finish();
}
