// Section IV-C's high-order claim: on the Tesla C2070 the full-slice
// method keeps a speedup over nvstencil "for up to 32nd order for SP
// stencils, and up to 16th order for DP stencils".  This bench sweeps the
// orders beyond Table IV and reports where the speedup crosses 1.0.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using namespace inplane::autotune;

template <typename T>
int sweep(bench::Session& session, report::Table& table,
          const gpusim::DeviceSpec& dev, const std::vector<int>& orders) {
  int last_winning_order = 0;
  for (int order : orders) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const auto nv =
        make_kernel<T>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
    const auto base = time_kernel(*nv, dev, session.grid());
    const TuneResult t =
        exhaustive_tune<T>(Method::InPlaneFullSlice, cs, dev, session.grid());
    if (!base.valid || !t.found()) continue;
    const double speedup = t.best.timing.mpoints_per_s / base.mpoints_per_s;
    if (speedup > 1.0) last_winning_order = order;
    table.add_row({inplane::bench::precision_name<T>(), std::to_string(order),
                   report::fmt(base.mpoints_per_s, 0),
                   report::fmt(t.best.timing.mpoints_per_s, 0),
                   report::fmt(speedup, 2) + "x"});
  }
  return last_winning_order;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("highorder_extension", argc, argv);
  const auto dev = inplane::gpusim::DeviceSpec::tesla_c2070();
  inplane::report::Table table(
      {"Prec", "Order", "nvstencil MPt/s", "full-slice MPt/s", "Speedup"});
  const std::vector<int> sp_orders =
      session.smoke() ? std::vector<int>{2, 4, 8}
                      : std::vector<int>{2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40};
  const std::vector<int> dp_orders =
      session.smoke() ? std::vector<int>{2, 4}
                      : std::vector<int>{2, 4, 8, 12, 16, 20, 24};
  const int sp_last = sweep<float>(session, table, dev, sp_orders);
  const int dp_last = sweep<double>(session, table, dev, dp_orders);
  session.emit(table,
               "High-order extension on Tesla C2070 (section IV-C claim: "
               "SP wins to order 32, DP to order 16)");
  std::printf("full-slice still ahead at order %d (SP) and %d (DP)\n", sp_last,
              dp_last);
  session.headline("last_winning_order_sp", sp_last, "order");
  session.headline("last_winning_order_dp", dp_last, "order");
  return session.finish();
}
