// ABFT checksum overhead: wall-clock cost of the online SDC detection
// layer.  The store-side hook sits on the hot warp-store path
// (BlockCtx::warp_store -> AbftSink::observe_store), so with ABFT off it
// must be a single never-taken pointer check — that disabled path is
// measured against the plain runner and held under 1%.  The enabled path
// (checksum prediction + per-store accumulation + the compare pass) is
// reported for scale; it buys online corruption detection without a
// CPU-reference verify, so it is expected to cost real time.
//
//   $ ./bench_abft_overhead [repeats] [--strict] [--smoke]
//
// Exits 0 when the disabled-path overhead is under the target (or always,
// without --strict, since CI machines are noisy; the table still shows
// the numbers).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/runner.hpp"
#include "report/stats.hpp"

namespace {

using namespace inplane;

int run(bench::Session& session, int repeats, bool strict) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const kernels::LaunchConfig cfg{32, 8, 1, 2, 4};
  const auto kernel =
      kernels::make_kernel<float>(kernels::Method::InPlaneFullSlice, cs, cfg);
  const Extent3 extent = session.smoke() ? Extent3{128, 64, 8} : Extent3{256, 256, 64};
  Grid3<float> in = kernels::make_grid_for(*kernel, extent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<float>(std::sin(0.1 * i) + 0.05 * j + 0.01 * k);
  });

  // Warm-up sweep so first-touch page faults don't land in either column.
  {
    Grid3<float> out = kernels::make_grid_for(*kernel, extent);
    kernels::run_kernel(*kernel, in, out, dev);
  }

  std::vector<double> plain_s;
  std::vector<double> off_s;
  std::vector<double> on_s;
  for (int rep = 0; rep < repeats; ++rep) {
    {
      Grid3<float> out = kernels::make_grid_for(*kernel, extent);
      const report::Stopwatch watch;
      kernels::run_kernel(*kernel, in, out, dev);
      plain_s.push_back(watch.seconds());
    }
    {
      // Hardened runner, ABFT off: the default configuration — the store
      // hook must stay a never-taken branch.
      Grid3<float> out = kernels::make_grid_for(*kernel, extent);
      const report::Stopwatch watch;
      const kernels::RunReport report =
          kernels::run_kernel_guarded(*kernel, in, out, dev, {});
      off_s.push_back(watch.seconds());
      if (!report.status.ok()) {
        std::printf("unexpected failure: %s\n", report.status.to_string().c_str());
        return 1;
      }
    }
    {
      // ABFT on: prediction from the input, per-store accumulation, and
      // the post-sweep compare.  No CPU-reference verify runs.
      Grid3<float> out = kernels::make_grid_for(*kernel, extent);
      kernels::RunOptions ro;
      ro.abft.enabled = true;
      const report::Stopwatch watch;
      const kernels::RunReport report =
          kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
      on_s.push_back(watch.seconds());
      if (!report.status.ok()) {
        std::printf("unexpected failure: %s\n", report.status.to_string().c_str());
        return 1;
      }
      if (report.abft.planes_flagged != 0) {
        std::printf("false positive: %llu plane(s) flagged on a clean run\n",
                    static_cast<unsigned long long>(report.abft.planes_flagged));
        return 1;
      }
    }
  }

  const double plain = report::median(plain_s);
  const double off = report::median(off_s);
  const double on = report::median(on_s);
  const double off_pct = (off / plain - 1.0) * 100.0;
  const double on_pct = (on / plain - 1.0) * 100.0;

  report::Table table({"Configuration", "Median wall [s]", "vs plain [%]"});
  table.add_row({"run_kernel (plain)", report::fmt(plain, 4), "0.00"});
  table.add_row({"run_kernel_guarded, ABFT off", report::fmt(off, 4),
                 report::fmt(off_pct, 2)});
  table.add_row({"run_kernel_guarded, ABFT on (predict+accumulate+compare)",
                 report::fmt(on, 4), report::fmt(on_pct, 2)});
  session.set_config("repeats", std::to_string(repeats));
  session.emit(table, "ABFT checksum overhead (median of " +
                          std::to_string(repeats) + " repeats)");
  session.headline("abft_disabled_overhead_pct", off_pct, "%",
                   /*higher_is_better=*/false, /*noisy=*/true);
  session.headline("abft_enabled_overhead_pct", on_pct, "%",
                   /*higher_is_better=*/false, /*noisy=*/true);

  const bool under_target = off_pct < 1.0;
  std::printf("disabled-path overhead: %.2f%% (target < 1%%): %s\n", off_pct,
              under_target ? "PASS" : "FAIL");
  const int finish = session.finish();
  if (finish != 0) return finish;
  return (strict && !under_target) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("abft_overhead", argc, argv);
  int repeats = session.smoke() ? 3 : 9;
  bool strict = false;
  for (const std::string& arg : session.args()) {
    if (arg == "--strict") {
      strict = true;
    } else {
      repeats = std::atoi(arg.c_str());
    }
  }
  if (repeats < 3) repeats = 3;
  return run(session, repeats, strict);
}
