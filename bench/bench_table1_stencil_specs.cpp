// Table I: stencil kernel specifications — extent, memory accesses per
// element (6r+2) and flops per element (7r+1) for orders 2-12.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace inplane;
  report::Table table({"Stencil Order", "Extent", "Memory Accesses/Elem.",
                       "Flops/Elem."});
  for (int order : paper_stencil_orders()) {
    const StencilSpec spec{order};
    table.add_row({std::to_string(order), spec.extent_string(),
                   std::to_string(spec.memory_refs()),
                   std::to_string(spec.flops_forward())});
  }
  bench::emit(table, "Table I: List of stencil kernels and their specifications",
              "table1_stencil_specs");
  return 0;
}
