// Table I: stencil kernel specifications — extent, memory accesses per
// element (6r+2) and flops per element (7r+1) for orders 2-12.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  bench::Session session("table1_stencil_specs", argc, argv);
  report::Table table({"Stencil Order", "Extent", "Memory Accesses/Elem.",
                       "Flops/Elem."});
  int max_order = 0;
  for (int order : session.orders()) {
    const StencilSpec spec{order};
    table.add_row({std::to_string(order), spec.extent_string(),
                   std::to_string(spec.memory_refs()),
                   std::to_string(spec.flops_forward())});
    max_order = order;
  }
  session.set_config("orders", std::to_string(session.orders().size()));
  const StencilSpec top{max_order};
  session.headline("memory_refs_per_elem_top_order",
                   static_cast<double>(top.memory_refs()), "refs",
                   /*higher_is_better=*/false);
  session.headline("flops_per_elem_top_order",
                   static_cast<double>(top.flops_forward()), "flops",
                   /*higher_is_better=*/false);
  session.emit(table, "Table I: List of stencil kernels and their specifications");
  return session.finish();
}
