// Block-class trace memoization: tracing throughput and soundness on a
// tuner-sweep-shaped workload (every in-plane/forward-plane variant
// across several launch shapes per stencil order — the mix the
// autotuner's candidate evaluation hammers).  Two claims are pinned:
//
//  * throughput — whole-grid Trace sweeps get MPoint/s faster with the
//    memo on, since only one representative block per position class is
//    traced (wall-clock, so noisy; the speedup grows with the block
//    count and exceeds 5x on the full-mode tracing lattice);
//  * soundness — gate-able, deterministic: for every variant the
//    memoized Both-mode run must produce a bit-identical output grid and
//    an identical aggregate TraceStats, or the identity headlines drop
//    from 1.0 and bench_diff flags the zero-baseline drift hard.
//
// Full (non-smoke) runs use a dedicated 256x256x64 tracing lattice: the
// paper's 512x512x256 evaluation grid would cost hours unmemoized, and
// 256 blocks per launch already puts the class count deep into its
// asymptote.  Smoke keeps the shared smoke lattice.
//
//   $ ./bench_trace_memo [repeats] [--smoke] [--results-dir <dir>]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autotune/search_space.hpp"
#include "bench_common.hpp"
#include "core/simd.hpp"
#include "kernels/runner.hpp"
#include "report/stats.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

struct SweepItem {
  Method method;
  int order;
  LaunchConfig cfg;
};

/// The candidate list a thread-blocking tuner sweep would trace: all
/// five variants, several tile shapes each, at every order of the
/// session.  Every tile divides both the smoke and the full lattice.
std::vector<SweepItem> build_sweep(const bench::Session& session) {
  std::vector<SweepItem> sweep;
  for (int order : session.orders()) {
    if (order > 8) continue;  // the memo claim is pinned on orders 2-8
    for (Method m : {Method::ForwardPlane, Method::InPlaneClassical,
                     Method::InPlaneVertical, Method::InPlaneHorizontal,
                     Method::InPlaneFullSlice}) {
      const int vec = autotune::default_vec(m, sizeof(float));
      for (const LaunchConfig base :
           {LaunchConfig{32, 8, 1, 1, 1}, LaunchConfig{16, 8, 2, 1, 1},
            LaunchConfig{32, 4, 1, 2, 1}, LaunchConfig{16, 4, 2, 2, 1}}) {
        LaunchConfig cfg = base;
        cfg.vec = vec;
        sweep.push_back({m, order, cfg});
      }
    }
  }
  return sweep;
}

/// One full Trace pass over the sweep; returns traced interior points.
double trace_sweep(Extent3 lattice, const gpusim::DeviceSpec& dev,
                   const std::vector<SweepItem>& sweep) {
  double points = 0.0;
  for (const SweepItem& item : sweep) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(item.order / 2);
    const auto kernel = make_kernel<float>(item.method, cs, item.cfg);
    Grid3<float> in = make_grid_for(*kernel, lattice);
    Grid3<float> out = make_grid_for(*kernel, lattice);
    (void)run_kernel(*kernel, in, out, dev, gpusim::ExecMode::Trace);
    points += static_cast<double>(lattice.volume());
  }
  return points;
}

/// Both-mode soundness check: memoized output grid and aggregate stats
/// must be bit-identical to the unmemoized run for every sweep item.
void check_identity(Extent3 lattice, const gpusim::DeviceSpec& dev,
                    const std::vector<SweepItem>& sweep, bool& bits_ok,
                    bool& stats_ok) {
  bits_ok = true;
  stats_ok = true;
  for (const SweepItem& item : sweep) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(item.order / 2);
    const auto kernel = make_kernel<float>(item.method, cs, item.cfg);
    Grid3<float> in = make_grid_for(*kernel, lattice);
    in.fill_with_halo([](int i, int j, int k) {
      return static_cast<float>(((i * 13 + j * 7 + k * 3) % 17) - 8) / 4.0f;
    });
    Grid3<float> plain = make_grid_for(*kernel, lattice);
    Grid3<float> memo = make_grid_for(*kernel, lattice);
    set_trace_memo_enabled(false);
    const gpusim::TraceStats s_plain =
        run_kernel(*kernel, in, plain, dev, gpusim::ExecMode::Both);
    set_trace_memo_enabled(true);
    const gpusim::TraceStats s_memo =
        run_kernel(*kernel, in, memo, dev, gpusim::ExecMode::Both);
    if (!(s_plain == s_memo)) {
      stats_ok = false;
      std::fprintf(stderr, "stats diverged: %s order %d %s\n",
                   to_string(item.method), item.order, item.cfg.to_string().c_str());
    }
    if (std::memcmp(plain.raw(), memo.raw(), plain.allocated() * sizeof(float)) !=
        0) {
      bits_ok = false;
      std::fprintf(stderr, "output diverged: %s order %d %s\n",
                   to_string(item.method), item.order, item.cfg.to_string().c_str());
    }
  }
}

int run(bench::Session& session, int repeats) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const Extent3 lattice = session.smoke() ? bench::kSmokeGrid : Extent3{256, 256, 64};
  session.set_config("grid", std::to_string(lattice.nx) + "x" +
                                 std::to_string(lattice.ny) + "x" +
                                 std::to_string(lattice.nz));
  const std::vector<SweepItem> sweep = build_sweep(session);

  // Warm-up primes allocators and the lazily built instrument references.
  set_trace_memo_enabled(true);
  (void)trace_sweep(lattice, dev, sweep);

  std::vector<double> plain_s;
  std::vector<double> memo_s;
  double points = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    set_trace_memo_enabled(false);
    report::Stopwatch watch;
    points = trace_sweep(lattice, dev, sweep);
    plain_s.push_back(watch.seconds());
    set_trace_memo_enabled(true);
    watch.restart();
    (void)trace_sweep(lattice, dev, sweep);
    memo_s.push_back(watch.seconds());
  }
  const double plain = report::median(plain_s);
  const double memo = report::median(memo_s);
  const double speedup = memo > 0.0 ? plain / memo : 0.0;
  const double mpts_plain = points / plain / 1e6;
  const double mpts_memo = points / memo / 1e6;

  bool bits_ok = false;
  bool stats_ok = false;
  check_identity(lattice, dev, sweep, bits_ok, stats_ok);

  report::Table table(
      {"Configuration", "Median wall [s]", "Tracing [MPt/s]", "Speedup [x]"});
  table.add_row({"memo off", report::fmt(plain, 4), report::fmt(mpts_plain, 1),
                 "1.0"});
  table.add_row({"memo on", report::fmt(memo, 4), report::fmt(mpts_memo, 1),
                 report::fmt(speedup, 2)});
  session.set_config("repeats", std::to_string(repeats));
  session.set_config("candidates", std::to_string(sweep.size()));
  session.set_config("simd", simd_enabled() ? "on" : "off");
  session.emit(table, "whole-grid tracing throughput, tuner-shaped sweep of " +
                          std::to_string(sweep.size()) + " candidates (median of " +
                          std::to_string(repeats) + " repeats)");

  session.headline("trace_speedup", speedup, "x",
                   /*higher_is_better=*/true, /*noisy=*/true);
  session.headline("traced_mpoints_per_s", mpts_memo, "MPt/s",
                   /*higher_is_better=*/true, /*noisy=*/true);
  // Deterministic soundness gates: any divergence drops these off their
  // committed 1.0 baseline, which bench_diff treats as a hard mismatch.
  session.headline("bit_identical", bits_ok ? 1.0 : 0.0, "bool",
                   /*higher_is_better=*/true, /*noisy=*/false);
  session.headline("stats_identical", stats_ok ? 1.0 : 0.0, "bool",
                   /*higher_is_better=*/true, /*noisy=*/false);

  std::printf("trace memo speedup: %.2fx (%.1f -> %.1f MPt/s), output %s, "
              "stats %s\n",
              speedup, mpts_plain, mpts_memo,
              bits_ok ? "bit-identical" : "DIVERGED",
              stats_ok ? "identical" : "DIVERGED");
  const int finish = session.finish();
  if (finish != 0) return finish;
  return (bits_ok && stats_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("trace_memo", argc, argv);
  int repeats = session.smoke() ? 3 : 5;
  for (const std::string& arg : session.args()) repeats = std::atoi(arg.c_str());
  if (repeats < 1) repeats = 1;
  return run(session, repeats);
}
