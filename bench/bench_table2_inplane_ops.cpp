// Table II: per-point operation counts of the in-plane method vs nvstencil —
// data references stay at 6r+2 while the incremental queue updates raise
// the flop count from 7r+1 to 8r+1.  The counts are also cross-checked
// against what the simulated kernels actually record.

#include <cstdio>

#include "bench_common.hpp"
#include "core/coefficients.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  bench::Session session("table2_inplane_ops", argc, argv);

  report::Table table(
      {"Stencil Order", "Data Refs.", "Flops (in-plane)", "Flops (nvstencil)",
       "Simulated flops/elem (in-plane)", "Simulated flops/elem (nvstencil)"});
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const LaunchConfig cfg{32, 4, 1, 1, 4};
  const double elems = 32.0 * 4.0;  // points per plane per block

  double last_inp = 0.0;
  double last_fwd = 0.0;
  for (int order : session.orders()) {
    const StencilSpec spec{order};
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const auto inplane_k = make_kernel<float>(Method::InPlaneFullSlice, cs, cfg);
    const auto forward_k =
        make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig{32, 4, 1, 1, 1});
    const double f_inp =
        static_cast<double>(inplane_k->trace_plane(dev, session.grid()).flops) / elems;
    const double f_fwd =
        static_cast<double>(forward_k->trace_plane(dev, session.grid()).flops) / elems;
    table.add_row({std::to_string(order), std::to_string(spec.memory_refs()),
                   std::to_string(spec.flops_inplane()),
                   std::to_string(spec.flops_forward()), report::fmt(f_inp, 0),
                   report::fmt(f_fwd, 0)});
    last_inp = f_inp;
    last_fwd = f_fwd;
  }
  session.headline("sim_flops_per_elem_inplane_top_order", last_inp, "flops",
                   /*higher_is_better=*/false);
  session.headline("sim_flops_per_elem_forward_top_order", last_fwd, "flops",
                   /*higher_is_better=*/false);
  session.emit(table,
               "Table II: Operations per grid point, in-plane method vs nvstencil");
  return session.finish();
}
