// Extension bench: z-slab multi-GPU scaling of the tuned in-plane
// full-slice kernel (the Physis [26] / multi-GPU-solver direction of the
// paper's introduction), with a PCIe-era halo-exchange model.
//
// Expected shape: near-linear scaling while slabs stay deep (the r-plane
// exchange hides under compute), efficiency falling as slabs thin out or
// the order (exchange volume) grows.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "multigpu/multi_gpu.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::kernels;

  report::Table table({"GPU", "Order", "Devices", "MPt/s", "Exchange ms/sweep",
                       "Speedup", "Efficiency"});
  for (const auto& dev :
       {gpusim::DeviceSpec::geforce_gtx580(), gpusim::DeviceSpec::tesla_c2070()}) {
    for (int order : {2, 8}) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const autotune::TuneResult tuned = autotune::exhaustive_tune<float>(
          Method::InPlaneFullSlice, cs, dev, bench::kGrid);
      for (int n : {1, 2, 4, 8}) {
        multigpu::MultiGpuOptions opt;
        opt.n_devices = n;
        const multigpu::MultiGpuStencil<float> mg(Method::InPlaneFullSlice, cs,
                                                  tuned.best.config, opt);
        const auto t = mg.estimate(dev, bench::kGrid);
        if (!t.valid) {
          table.add_row({dev.name, std::to_string(order), std::to_string(n),
                         "invalid: " + t.invalid_reason, "-", "-", "-"});
          continue;
        }
        table.add_row({dev.name, std::to_string(order), std::to_string(n),
                       report::fmt(t.mpoints_per_s, 0),
                       report::fmt(t.exchange_seconds * 1e3, 3),
                       report::fmt(t.scaling_speedup, 2) + "x",
                       report::fmt(t.parallel_efficiency * 100.0, 0) + "%"});
      }
    }
  }
  inplane::bench::emit(table,
                       "Extension: multi-GPU z-slab scaling, tuned full-slice (SP)",
                       "multigpu_scaling");
  return 0;
}
