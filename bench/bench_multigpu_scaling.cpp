// Extension bench: z-slab multi-GPU scaling of the tuned in-plane
// full-slice kernel (the Physis [26] / multi-GPU-solver direction of the
// paper's introduction), with a PCIe-era halo-exchange model.
//
// Expected shape: near-linear scaling while slabs stay deep (the r-plane
// exchange hides under compute), efficiency falling as slabs thin out or
// the order (exchange volume) grows.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "multigpu/multi_gpu.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  bench::Session session("multigpu_scaling", argc, argv);

  report::Table table({"GPU", "Order", "Devices", "MPt/s", "Exchange ms/sweep",
                       "Speedup", "Efficiency"});
  const std::vector<int> orders =
      session.smoke() ? std::vector<int>{2} : std::vector<int>{2, 8};
  const std::vector<int> device_counts =
      session.smoke() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  double eff_sum = 0.0;
  int eff_n = 0;
  for (const auto& dev :
       {gpusim::DeviceSpec::geforce_gtx580(), gpusim::DeviceSpec::tesla_c2070()}) {
    for (int order : orders) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const autotune::TuneResult tuned = autotune::exhaustive_tune<float>(
          Method::InPlaneFullSlice, cs, dev, session.grid());
      for (int n : device_counts) {
        multigpu::MultiGpuOptions opt;
        opt.n_devices = n;
        const multigpu::MultiGpuStencil<float> mg(Method::InPlaneFullSlice, cs,
                                                  tuned.best.config, opt);
        const auto t = mg.estimate(dev, session.grid());
        if (!t.valid) {
          table.add_row({dev.name, std::to_string(order), std::to_string(n),
                         "invalid: " + t.invalid_reason, "-", "-", "-"});
          continue;
        }
        table.add_row({dev.name, std::to_string(order), std::to_string(n),
                       report::fmt(t.mpoints_per_s, 0),
                       report::fmt(t.exchange_seconds * 1e3, 3),
                       report::fmt(t.scaling_speedup, 2) + "x",
                       report::fmt(t.parallel_efficiency * 100.0, 0) + "%"});
        if (n > 1) {
          eff_sum += t.parallel_efficiency * 100.0;
          eff_n += 1;
        }
      }
    }
  }
  if (eff_n > 0) {
    session.headline("parallel_efficiency_mean", eff_sum / eff_n, "%");
  }
  session.emit(table,
               "Extension: multi-GPU z-slab scaling, tuned full-slice (SP)");
  return session.finish();
}
