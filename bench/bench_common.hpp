#pragma once

// Shared setup for the reproduction bench binaries: the evaluation grid and
// device list of section IV-A, plus small formatting helpers.

#include <string>
#include <vector>

#include "core/extent.hpp"
#include "core/stencil_spec.hpp"
#include "gpusim/device.hpp"
#include "report/table.hpp"

namespace inplane::bench {

/// The evaluation lattice used throughout sections IV-VI: 512 x 512 x 256.
inline constexpr Extent3 kGrid{512, 512, 256};

/// Where bench binaries drop machine-readable copies of their tables.
inline const char* kResultsDir = "results";

template <typename T>
[[nodiscard]] const char* precision_name() {
  return sizeof(T) == 8 ? "DP" : "SP";
}

/// Writes a rendered table to stdout and its CSV twin to results/<stem>.csv.
inline void emit(const report::Table& table, const std::string& title,
                 const std::string& stem) {
  std::fputs(table.render(title).c_str(), stdout);
  std::fputs("\n", stdout);
  report::write_file(std::string(kResultsDir) + "/" + stem + ".csv", table.to_csv());
}

}  // namespace inplane::bench
