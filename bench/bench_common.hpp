#pragma once

// Shared setup for the reproduction bench binaries: the evaluation grid and
// device list of section IV-A, plus the Session harness every bench runs
// under.  A Session parses the common flags, scales the workload down in
// smoke mode, collects headline metrics and — at finish() — writes the
// schema-versioned BENCH_<name>.json next to the CSV so tools/bench_diff
// and the bench-smoke ctest tier can consume every bench uniformly.
//
// Common flags (every bench accepts them; extra args stay available via
// Session::args()):
//   --smoke              tiny grid, one device, one repeat — seconds, not
//                        minutes; used by the bench-smoke ctest tier
//   --results-dir <dir>  where the CSV and BENCH json land (default
//                        "results", or $INPLANE_RESULTS_DIR)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/extent.hpp"
#include "core/stencil_spec.hpp"
#include "gpusim/device.hpp"
#include "metrics/metrics.hpp"
#include "report/bench_json.hpp"
#include "report/table.hpp"

namespace inplane::bench {

/// The evaluation lattice used throughout sections IV-VI: 512 x 512 x 256.
inline constexpr Extent3 kGrid{512, 512, 256};

/// Smoke-mode lattice: big enough that every tile shape in the search
/// space still divides it (tx*rx <= 128, ty*ry <= 64), small enough that
/// the whole bench suite sweeps in seconds.
inline constexpr Extent3 kSmokeGrid{128, 64, 8};

template <typename T>
[[nodiscard]] const char* precision_name() {
  return sizeof(T) == 8 ? "DP" : "SP";
}

class Session {
 public:
  /// @p name must match the BENCH file stem: [a-z0-9_]+.
  Session(std::string name, int argc, char** argv) : name_(std::move(name)) {
    if (const char* dir = std::getenv("INPLANE_RESULTS_DIR")) {
      if (*dir != '\0') results_dir_ = dir;
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke_ = true;
      } else if (std::strcmp(argv[i], "--results-dir") == 0 && i + 1 < argc) {
        results_dir_ = argv[++i];
      } else {
        args_.emplace_back(argv[i]);
      }
    }
    // Collection is on for the duration of the bench so the report carries
    // the full registry snapshot; counters start from a clean slate.
    metrics::set_enabled(true);
    metrics::Registry::global().reset();
    report_.bench = name_;
    report_.smoke = smoke_;
    report_.repo_sha = report::compiled_repo_sha();
    const Extent3 g = grid();
    set_config("grid", std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
                           std::to_string(g.nz));
  }

  [[nodiscard]] bool smoke() const { return smoke_; }
  [[nodiscard]] const std::string& results_dir() const { return results_dir_; }
  /// Positional/extra arguments with the common flags stripped out.
  [[nodiscard]] const std::vector<std::string>& args() const { return args_; }

  /// The bench lattice: the paper's 512x512x256, or the smoke lattice.
  [[nodiscard]] Extent3 grid() const { return smoke_ ? kSmokeGrid : kGrid; }

  /// Devices to sweep: all three paper GPUs, or just the GTX 580 in smoke.
  [[nodiscard]] std::vector<gpusim::DeviceSpec> devices() const {
    if (smoke_) return {gpusim::DeviceSpec::geforce_gtx580()};
    return gpusim::paper_devices();
  }

  /// Stencil orders to sweep: the paper's 2-12, or {2, 4} in smoke.
  [[nodiscard]] std::vector<int> orders() const {
    if (smoke_) return {2, 4};
    return paper_stencil_orders();
  }

  /// Repeat count for wall-clock measurements: @p full, or 1 in smoke.
  [[nodiscard]] int repeats(int full) const { return smoke_ ? 1 : full; }

  /// Records a configuration dimension into the report fingerprint.
  void set_config(const std::string& key, std::string value) {
    report_.config[key] = std::move(value);
  }

  /// Records one gate-able result.  Mark wall-clock-derived values noisy —
  /// bench_diff skips them by default; simulated MPt/s and ratios derived
  /// from the timing model are deterministic and should stay gate-able.
  void headline(const std::string& metric, double value, const std::string& unit,
                bool higher_is_better = true, bool noisy = false) {
    report_.headline.push_back({metric, value, unit, higher_is_better, noisy});
  }

  /// Writes a rendered table to stdout and its CSV twin to
  /// <results-dir>/<stem>.csv.
  void emit(const report::Table& table, const std::string& title,
            const std::string& stem) {
    std::fputs(table.render(title).c_str(), stdout);
    std::fputs("\n", stdout);
    report::write_file(results_dir_ + "/" + stem + ".csv", table.to_csv());
  }

  /// Overload defaulting the CSV stem to the session name.
  void emit(const report::Table& table, const std::string& title) {
    emit(table, title, name_);
  }

  /// Snapshots the metrics registry and writes BENCH_<name>.json.
  /// Returns the process exit code (0; emission failures print and
  /// return 1 rather than throwing out of main).
  int finish() {
    report_.metrics = report::metric_samples(metrics::Registry::global());
    try {
      const std::string path = report::write_bench_report(report_, results_dir_);
      std::printf("wrote %s\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench report: %s\n", e.what());
      return 1;
    }
    return 0;
  }

 private:
  std::string name_;
  std::string results_dir_ = "results";
  bool smoke_ = false;
  std::vector<std::string> args_;
  report::BenchReport report_;
};

}  // namespace inplane::bench
