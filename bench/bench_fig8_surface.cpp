// Fig. 8: auto-tuning performance surfaces over the register-blocking
// factors (RX, RY) for the 2nd and 8th order SP stencils on the GeForce
// GTX580, with (TX, TY) fixed at the tuned optimum.  Points violating the
// search constraints (or unable to launch) are zero, as in the paper.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("fig8_surface", argc, argv);

  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const std::vector<int> rx_values = {1, 2, 4};
  const std::vector<int> ry_values = {1, 2, 4, 8};
  const std::vector<int> surface_orders = session.smoke() ? std::vector<int>{2}
                                                          : std::vector<int>{2, 8};

  for (int order : surface_orders) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    // Find the overall optimum first; its (TX, TY) anchors the surface.
    const TuneResult best =
        exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, session.grid());
    const LaunchConfig opt = best.best.config;
    session.headline("best_mpoints_o" + std::to_string(order),
                     best.best.timing.mpoints_per_s, "mpoints/s");

    std::vector<std::string> x_labels;
    for (int rx : rx_values) x_labels.push_back("RX=" + std::to_string(rx));
    std::vector<std::string> y_labels;
    std::vector<std::vector<double>> z;
    report::Table csv({"order", "tx", "ty", "rx", "ry", "mpoints"});
    for (int ry : ry_values) {
      y_labels.push_back("RY=" + std::to_string(ry));
      std::vector<double> zrow;
      for (int rx : rx_values) {
        LaunchConfig cfg = opt;
        cfg.rx = rx;
        cfg.ry = ry;
        const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, cs, cfg);
        const auto t = time_kernel(*kernel, dev, session.grid());
        const double v = t.valid ? t.mpoints_per_s : 0.0;
        zrow.push_back(v);
        csv.add_row({std::to_string(order), std::to_string(cfg.tx),
                     std::to_string(cfg.ty), std::to_string(rx), std::to_string(ry),
                     report::fmt(v, 1)});
      }
      z.push_back(std::move(zrow));
    }
    std::fputs(report::surface("Fig. 8: MPoint/s surface, order " +
                                   std::to_string(order) + " SP on GTX580, TX=" +
                                   std::to_string(opt.tx) + " TY=" +
                                   std::to_string(opt.ty),
                               x_labels, y_labels, z)
                   .c_str(),
               stdout);
    std::printf("best: %s at %.1f MPoint/s\n\n", best.best.config.to_string().c_str(),
                best.best.timing.mpoints_per_s);
    report::write_file(session.results_dir() + "/fig8_surface_o" +
                           std::to_string(order) + ".csv",
                       csv.to_csv());
  }
  return session.finish();
}
