// Section V-B: comparison with previously published stencil results.  The
// paper extrapolates prior numbers to its own cards by theoretical
// bandwidth; this bench applies the same extrapolation to OUR measured
// (simulated) numbers so the comparison methodology is reproducible.
//
// Published reference points quoted in the paper:
//   Nguyen et al. [14]: 9234 MPt/s SP, ~4600 MPt/s DP, 2nd order, GTX285
//   Christen (Patus) [17]: ~30 GFlop/s SP Laplacian on Tesla C2050
//   Physis [26]: 67 GFlop/s SP 7-point on Tesla M2050
//   Holewinski [27]: 28.7 GFlop/s DP 7-point Jacobi on GTX580

#include <algorithm>
#include <cstdio>

#include "apps/app_kernel.hpp"
#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("prior_work", argc, argv);

  const auto gtx580 = gpusim::DeviceSpec::geforce_gtx580();
  const auto c2070 = gpusim::DeviceSpec::tesla_c2070();

  // Our tuned 2nd order results.
  const StencilCoeffs o2 = StencilCoeffs::diffusion(1);
  const double sp_o2 =
      exhaustive_tune<float>(Method::InPlaneFullSlice, o2, gtx580, session.grid())
          .best.timing.mpoints_per_s;
  const double dp_o2 =
      exhaustive_tune<double>(Method::InPlaneFullSlice, o2, gtx580, session.grid())
          .best.timing.mpoints_per_s;
  // GFlop/s under the paper's counting: the 7-point Laplacian / 2nd order
  // Jacobi stencil performs 7r+1 = 8 flops per point.
  const auto sp_lap_c2070 = [&] {
    double best_mpts = 0.0;
    autotune::SearchSpace space;
    for (const auto& cfg :
         space.enumerate(c2070, session.grid(), Method::InPlaneFullSlice, 1, 4, 4)) {
      const apps::AppKernel<float> k(apps::laplacian(), apps::AppMethod::InPlaneFullSlice,
                                     cfg);
      const auto t = apps::time_app_kernel(k, c2070, session.grid());
      if (t.valid) best_mpts = std::max(best_mpts, t.mpoints_per_s);
    }
    return best_mpts * 1e6 * 8.0 / 1e9;
  }();
  const double dp_o2_gflops = dp_o2 * 1e6 * 8.0 / 1e9;

  // Bandwidth extrapolation: GTX285 peak 159 GB/s -> GTX580 192.4 GB/s.
  const double nguyen_sp_extrap = 9234.0 * (192.4 / 159.0);
  const double nguyen_dp_extrap = 4600.0 * (192.4 / 159.0);

  report::Table table({"Reference", "Published", "Extrapolated / compared", "Ours",
                       "Ours vs prior"});
  table.add_row({"Nguyen [14] SP o2 (GTX285)", "9234 MPt/s",
                 report::fmt(nguyen_sp_extrap, 0) + " MPt/s on GTX580",
                 report::fmt(sp_o2, 0) + " MPt/s",
                 report::fmt((sp_o2 / nguyen_sp_extrap - 1.0) * 100.0, 0) + "%"});
  table.add_row({"Nguyen [14] DP o2 (GTX285)", "4600 MPt/s",
                 report::fmt(nguyen_dp_extrap, 0) + " MPt/s on GTX580",
                 report::fmt(dp_o2, 0) + " MPt/s",
                 report::fmt((dp_o2 / nguyen_dp_extrap - 1.0) * 100.0, 0) + "%"});
  table.add_row({"Christen/Patus [17] SP Laplacian (C2050)", "30 GFlop/s",
                 "same-spec Tesla C2070",
                 report::fmt(sp_lap_c2070, 1) + " GFlop/s",
                 report::fmt((sp_lap_c2070 / 30.0 - 1.0) * 100.0, 0) + "%"});
  table.add_row({"Holewinski [27] DP 7-pt Jacobi (GTX580)", "28.7 GFlop/s",
                 "same card", report::fmt(dp_o2_gflops, 1) + " GFlop/s",
                 report::fmt((dp_o2_gflops / 28.7 - 1.0) * 100.0, 0) + "%"});
  session.emit(table, "Section V-B: comparison with previous work");
  std::printf("paper's own figures: SP ~39%% above [14], DP ~16%% above [14], 96 "
              "GFlop/s vs 30 for [17], ~65 GFlop/s vs 28.7 for [27]\n");
  session.headline("sp_o2_mpoints", sp_o2, "mpoints/s");
  session.headline("dp_o2_mpoints", dp_o2, "mpoints/s");
  session.headline("sp_laplacian_gflops_c2070", sp_lap_c2070, "gflops");
  return session.finish();
}
