// Metrics-collection overhead: wall-clock cost of the instrumentation
// sites when collection is switched off.  Every record site is guarded by
// one relaxed atomic load and a predicted-not-taken branch; the enabled
// path does strictly more work (the same guard, taken, plus the relaxed
// adds and the per-launch flush), so pinning the *enabled* overhead under
// the 1% target bounds the disabled-path cost from above.
//
// The workload is the Fig. 7 variant sweep (exhaustive tuning of the
// three in-plane variants, thread blocking only) — the layer with the
// densest instrumentation (runner flush + tuner + timing model).
//
//   $ ./bench_metrics_overhead [repeats] [--strict] [--smoke]
//
// Exits 0 when the measured overhead is under the target (or always,
// without --strict, since CI machines are noisy; the table still shows
// the numbers).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"
#include "report/stats.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using namespace inplane::autotune;

double sweep_once(const bench::Session& session, const gpusim::DeviceSpec& dev,
                  const SearchSpace& space) {
  const report::Stopwatch watch;
  for (int order : session.orders()) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    for (Method m : {Method::InPlaneVertical, Method::InPlaneHorizontal,
                     Method::InPlaneFullSlice}) {
      const TuneResult t = exhaustive_tune<float>(m, cs, dev, session.grid(), space);
      if (!t.found()) std::fprintf(stderr, "warning: no valid config\n");
    }
  }
  return watch.seconds();
}

int run(bench::Session& session, int repeats, bool strict) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  SearchSpace thread_blocking_only;
  thread_blocking_only.rx_values = {1};
  thread_blocking_only.ry_values = {1};

  // Warm-up (also primes the lazily constructed instrument references).
  metrics::set_enabled(true);
  sweep_once(session, dev, thread_blocking_only);

  std::vector<double> off_s;
  std::vector<double> on_s;
  for (int rep = 0; rep < repeats; ++rep) {
    metrics::set_enabled(false);
    off_s.push_back(sweep_once(session, dev, thread_blocking_only));
    metrics::set_enabled(true);
    on_s.push_back(sweep_once(session, dev, thread_blocking_only));
  }

  const double off = report::median(off_s);
  const double on = report::median(on_s);
  const double overhead_pct = (on / off - 1.0) * 100.0;

  report::Table table({"Configuration", "Median wall [s]", "vs disabled [%]"});
  table.add_row({"metrics disabled", report::fmt(off, 4), "0.00"});
  table.add_row({"metrics enabled", report::fmt(on, 4),
                 report::fmt(overhead_pct, 2)});
  session.set_config("repeats", std::to_string(repeats));
  session.emit(table, "metrics-collection overhead on the Fig. 7 variant sweep "
                      "(median of " + std::to_string(repeats) + " repeats)");
  session.headline("metrics_overhead_pct", overhead_pct, "%",
                   /*higher_is_better=*/false, /*noisy=*/true);

  const bool under_target = overhead_pct < 1.0;
  std::printf("metrics-enabled overhead: %.2f%% (target < 1%%, bounds the "
              "disabled path): %s\n",
              overhead_pct, under_target ? "PASS" : "FAIL");
  const int finish = session.finish();
  if (finish != 0) return finish;
  return (strict && !under_target) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("metrics_overhead", argc, argv);
  int repeats = session.smoke() ? 3 : 9;
  bool strict = false;
  for (const std::string& arg : session.args()) {
    if (arg == "--strict") {
      strict = true;
    } else {
      repeats = std::atoi(arg.c_str());
    }
  }
  if (repeats < 3) repeats = 3;
  return run(session, repeats, strict);
}
