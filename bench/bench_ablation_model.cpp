// Ablation of the timing-model terms (DESIGN.md section 6): which
// micro-architectural mechanism produces which paper phenomenon?  Each
// ablation disables one mechanism by altering the device description and
// re-runs the order-2/order-12 full-slice-vs-nvstencil comparison.
//
//   A. coalescing granularity  — set 4-byte segments (every access "perfectly
//      coalesced"): the full-slice advantage should mostly vanish.
//   B. per-warp MLP cap        — set it very high: the Kepler (GTX680) gap
//      between scalar and vectorised loading narrows.
//   C. store sectoring         — 128-byte store segments instead of 32: the
//      full-slice alignment trade-off is overcharged and its win shrinks.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using namespace inplane::autotune;

double speedup(const bench::Session& session, const gpusim::DeviceSpec& dev,
               int order) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const auto nv =
      make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
  const double base = time_kernel(*nv, dev, session.grid()).mpoints_per_s;
  const TuneResult t =
      exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, session.grid());
  return t.best.timing.mpoints_per_s / base;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("ablation_model", argc, argv);
  const int hi_order = session.smoke() ? 4 : 12;
  report::Table table(
      {"Device", "Ablation", "Speedup o2", "Speedup o" + std::to_string(hi_order)});
  double full_model_o2 = 0.0;
  for (auto base_dev :
       {gpusim::DeviceSpec::geforce_gtx580(), gpusim::DeviceSpec::geforce_gtx680()}) {
    {
      const double s2 = speedup(session, base_dev, 2);
      if (full_model_o2 == 0.0) full_model_o2 = s2;
      table.add_row({base_dev.name, "none (full model)", report::fmt(s2, 2) + "x",
                     report::fmt(speedup(session, base_dev, hi_order), 2) + "x"});
    }
    {
      auto dev = base_dev;
      dev.coalesce_bytes = 4;
      dev.store_segment_bytes = 4;
      table.add_row({base_dev.name, "A: no coalescing granularity",
                     report::fmt(speedup(session, dev, 2), 2) + "x",
                     report::fmt(speedup(session, dev, hi_order), 2) + "x"});
    }
    {
      auto dev = base_dev;
      dev.max_outstanding_loads_per_warp = 1e9;
      table.add_row({base_dev.name, "B: unlimited per-warp MLP",
                     report::fmt(speedup(session, dev, 2), 2) + "x",
                     report::fmt(speedup(session, dev, hi_order), 2) + "x"});
    }
    {
      auto dev = base_dev;
      dev.store_segment_bytes = 128;
      table.add_row({base_dev.name, "C: 128-byte store sectors",
                     report::fmt(speedup(session, dev, 2), 2) + "x",
                     report::fmt(speedup(session, dev, hi_order), 2) + "x"});
    }
  }
  session.set_config("hi_order", std::to_string(hi_order));
  session.headline("full_model_speedup_o2_gtx580", full_model_o2, "x");
  session.emit(table, "Timing-model ablation (tuned full-slice vs nvstencil)");
  return session.finish();
}
