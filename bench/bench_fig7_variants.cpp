// Fig. 7: speedup of the in-plane loading variants (vertical, horizontal,
// full-slice) over nvstencil, with thread blocking only (RX = RY = 1), on
// all three GPUs and stencil orders 2-12, single precision, 512x512x256.
//
// Expected shape (section IV-B): full-slice consistently best (~1.2-1.6x,
// peaking at low order); horizontal close behind; vertical competitive at
// low order but collapsing below 1.0x for the 10th/12th order stencils.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;

  SearchSpace thread_blocking_only;
  thread_blocking_only.rx_values = {1};
  thread_blocking_only.ry_values = {1};

  report::Table table({"GPU", "Order", "nvstencil MPt/s", "vertical", "horizontal",
                       "full-slice"});
  for (const auto& dev : gpusim::paper_devices()) {
    std::vector<report::Bar> bars;
    for (int order : paper_stencil_orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double base = time_kernel(*nv, dev, bench::kGrid).mpoints_per_s;
      std::vector<std::string> row{dev.name, std::to_string(order),
                                   report::fmt(base, 0)};
      for (Method m : {Method::InPlaneVertical, Method::InPlaneHorizontal,
                       Method::InPlaneFullSlice}) {
        const TuneResult t =
            exhaustive_tune<float>(m, cs, dev, bench::kGrid, thread_blocking_only);
        const double speedup = t.best.timing.mpoints_per_s / base;
        row.push_back(report::fmt(speedup, 2) + "x");
        if (m == Method::InPlaneFullSlice) {
          bars.push_back({"o" + std::to_string(order), speedup});
        }
      }
      table.add_row(std::move(row));
    }
    std::fputs(
        report::bar_chart("full-slice speedup over nvstencil on " + dev.name, bars, 40,
                          "x")
            .c_str(),
        stdout);
    std::fputs("\n", stdout);
  }
  bench::emit(table,
              "Fig. 7: Speedup of in-plane variants over nvstencil (thread "
              "blocking only, SP)",
              "fig7_variants");
  return 0;
}
