// Fig. 7: speedup of the in-plane loading variants (vertical, horizontal,
// full-slice) over nvstencil, with thread blocking only (RX = RY = 1), on
// all three GPUs and stencil orders 2-12, single precision, 512x512x256.
//
// Expected shape (section IV-B): full-slice consistently best (~1.2-1.6x,
// peaking at low order); horizontal close behind; vertical competitive at
// low order but collapsing below 1.0x for the 10th/12th order stencils.

#include <algorithm>
#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("fig7_variants", argc, argv);

  SearchSpace thread_blocking_only;
  thread_blocking_only.rx_values = {1};
  thread_blocking_only.ry_values = {1};

  report::Table table({"GPU", "Order", "nvstencil MPt/s", "vertical", "horizontal",
                       "full-slice"});
  double fullslice_sum = 0.0;
  double fullslice_min = 0.0;
  int fullslice_n = 0;
  for (const auto& dev : session.devices()) {
    std::vector<report::Bar> bars;
    for (int order : session.orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double base = time_kernel(*nv, dev, session.grid()).mpoints_per_s;
      std::vector<std::string> row{dev.name, std::to_string(order),
                                   report::fmt(base, 0)};
      for (Method m : {Method::InPlaneVertical, Method::InPlaneHorizontal,
                       Method::InPlaneFullSlice}) {
        const TuneResult t =
            exhaustive_tune<float>(m, cs, dev, session.grid(), thread_blocking_only);
        const double speedup = t.best.timing.mpoints_per_s / base;
        row.push_back(report::fmt(speedup, 2) + "x");
        if (m == Method::InPlaneFullSlice) {
          bars.push_back({"o" + std::to_string(order), speedup});
          fullslice_sum += speedup;
          fullslice_min = fullslice_n == 0 ? speedup : std::min(fullslice_min, speedup);
          fullslice_n += 1;
        }
      }
      table.add_row(std::move(row));
    }
    std::fputs(
        report::bar_chart("full-slice speedup over nvstencil on " + dev.name, bars, 40,
                          "x")
            .c_str(),
        stdout);
    std::fputs("\n", stdout);
  }
  if (fullslice_n > 0) {
    session.headline("fullslice_speedup_mean", fullslice_sum / fullslice_n, "x");
    session.headline("fullslice_speedup_min", fullslice_min, "x");
  }
  session.emit(table,
               "Fig. 7: Speedup of in-plane variants over nvstencil (thread "
               "blocking only, SP)");
  return session.finish();
}
