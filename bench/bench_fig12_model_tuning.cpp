// Fig. 12: model-based auto-tuning (section VI) vs exhaustive search, with
// the cutoff beta = 5% of the global parameter space, for all stencil
// orders (SP) on GTX580, GTX680 and Tesla C2050.
//
// Expected shape: the model-guided result within a few percent of the
// exhaustive optimum on average, while executing only a small fraction of
// the candidate configurations.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;

  const double beta = 0.05;
  const std::vector devices = {gpusim::DeviceSpec::geforce_gtx580(),
                               gpusim::DeviceSpec::geforce_gtx680(),
                               gpusim::DeviceSpec::tesla_c2050()};

  report::Table table({"GPU", "Order", "Exhaustive MPt/s", "Model-based MPt/s",
                       "Gap (%)", "Configs run (exh)", "Configs run (model)"});
  double worst_gap = 0.0;
  double sum_gap = 0.0;
  int n = 0;
  for (const auto& dev : devices) {
    for (int order : paper_stencil_orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const TuneResult exh =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, bench::kGrid);
      const TuneResult mod = model_guided_tune<float>(Method::InPlaneFullSlice, cs,
                                                      dev, bench::kGrid, beta);
      const double gap = (1.0 - mod.best.timing.mpoints_per_s /
                                    exh.best.timing.mpoints_per_s) *
                         100.0;
      worst_gap = std::max(worst_gap, gap);
      sum_gap += gap;
      n += 1;
      table.add_row({dev.name, std::to_string(order),
                     report::fmt(exh.best.timing.mpoints_per_s, 1),
                     report::fmt(mod.best.timing.mpoints_per_s, 1),
                     report::fmt(gap, 2), std::to_string(exh.executed),
                     std::to_string(mod.executed)});
    }
  }
  bench::emit(table,
              "Fig. 12: Model-based auto-tuning vs exhaustive search (beta = 5%, SP)",
              "fig12_model_tuning");
  std::printf("average gap %.2f%%, worst gap %.2f%% (paper: ~2%% avg, ~6%% worst)\n",
              sum_gap / n, worst_gap);
  return 0;
}
