// Fig. 12: model-based auto-tuning (section VI) vs exhaustive search, with
// the cutoff beta = 5% of the global parameter space, for all stencil
// orders (SP) on GTX580, GTX680 and Tesla C2050.
//
// Expected shape: the model-guided result within a few percent of the
// exhaustive optimum on average, while executing only a small fraction of
// the candidate configurations.

#include <algorithm>
#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("fig12_model_tuning", argc, argv);

  const double beta = 0.05;
  session.set_config("beta", "0.05");

  report::Table table({"GPU", "Order", "Exhaustive MPt/s", "Model-based MPt/s",
                       "Gap (%)", "Configs run (exh)", "Configs run (model)"});
  double worst_gap = 0.0;
  double sum_gap = 0.0;
  int n = 0;
  for (const auto& dev : session.devices()) {
    for (int order : session.orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const TuneResult exh =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, session.grid());
      const TuneResult mod = model_guided_tune<float>(Method::InPlaneFullSlice, cs,
                                                      dev, session.grid(), beta);
      const double gap = (1.0 - mod.best.timing.mpoints_per_s /
                                    exh.best.timing.mpoints_per_s) *
                         100.0;
      worst_gap = std::max(worst_gap, gap);
      sum_gap += gap;
      n += 1;
      table.add_row({dev.name, std::to_string(order),
                     report::fmt(exh.best.timing.mpoints_per_s, 1),
                     report::fmt(mod.best.timing.mpoints_per_s, 1),
                     report::fmt(gap, 2), std::to_string(exh.executed),
                     std::to_string(mod.executed)});
    }
  }
  session.emit(table,
               "Fig. 12: Model-based auto-tuning vs exhaustive search (beta = 5%, SP)");
  std::printf("average gap %.2f%%, worst gap %.2f%% (paper: ~2%% avg, ~6%% worst)\n",
              sum_gap / n, worst_gap);
  session.headline("model_gap_mean", sum_gap / n, "%", /*higher_is_better=*/false);
  session.headline("model_gap_worst", worst_gap, "%", /*higher_is_better=*/false);
  return session.finish();
}
