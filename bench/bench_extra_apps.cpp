// Extension bench: the two additional application stencils beyond Table V —
// the leapfrog acoustic wave equation and the 8th-order seismic RTM kernel
// with a varying-velocity grid — under the same Fig. 11 methodology.

#include <cctype>
#include <cstdio>
#include <string>

#include "apps/app_kernel.hpp"
#include "autotune/search_space.hpp"
#include "bench_common.hpp"

namespace {

using namespace inplane;
using namespace inplane::apps;

std::string slug(const std::string& name) {
  std::string s;
  for (const char c : name) {
    s.push_back(std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                    : '_');
  }
  return s;
}

template <typename T>
void rows(bench::Session& session, report::Table& table,
          const gpusim::DeviceSpec& dev) {
  autotune::SearchSpace space;
  for (const AppFormula& f : {wave(), seismic_rtm()}) {
    const AppKernel<T> nv(f, AppMethod::ForwardPlane,
                          kernels::LaunchConfig::nvstencil_default());
    const double base = time_app_kernel(nv, dev, session.grid()).mpoints_per_s;
    double best = 0.0;
    kernels::LaunchConfig best_cfg;
    for (const auto& cfg :
         space.enumerate(dev, session.grid(), kernels::Method::InPlaneFullSlice,
                         std::max(f.radius(), 1), sizeof(T),
                         autotune::default_vec(kernels::Method::InPlaneFullSlice,
                                               sizeof(T)))) {
      const AppKernel<T> k(f, AppMethod::InPlaneFullSlice, cfg);
      const auto t = time_app_kernel(k, dev, session.grid());
      if (t.valid && t.mpoints_per_s > best) {
        best = t.mpoints_per_s;
        best_cfg = cfg;
      }
    }
    table.add_row({bench::precision_name<T>(), f.name(), std::to_string(f.n_inputs()),
                   std::to_string(f.n_outputs()), report::fmt(base, 0),
                   report::fmt(best, 0), best_cfg.to_string(),
                   report::fmt(best / base, 2) + "x"});
    session.headline(slug(f.name()) + "_speedup_" + (sizeof(T) == 8 ? "dp" : "sp"),
                     best / base, "x");
  }
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("extra_apps", argc, argv);
  const auto dev = inplane::gpusim::DeviceSpec::geforce_gtx580();
  inplane::report::Table table({"Prec", "Stencil", "In", "Out", "nvstencil MPt/s",
                                "in-plane MPt/s", "Optimal Param.", "Speedup"});
  rows<float>(session, table, dev);
  rows<double>(session, table, dev);
  session.emit(table,
               "Extension: wave / seismic-RTM application stencils on "
               "GeForce GTX580");
  return session.finish();
}
