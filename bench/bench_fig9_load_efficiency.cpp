// Fig. 9: global memory load efficiency (bytes requested / bytes moved) of
// the tuned full-slice kernel vs nvstencil, for all stencil orders on the
// three GPUs.  Expected shape: full-slice above nvstencil for every order
// and device — the better halo coalescing is the whole point of the
// method.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("fig9_load_efficiency", argc, argv);

  report::Table table({"GPU", "Order", "nvstencil eff (%)", "full-slice eff (%)"});
  double nv_sum = 0.0;
  double fs_sum = 0.0;
  int n = 0;
  for (const auto& dev : session.devices()) {
    std::vector<report::Bar> bars;
    for (int order : session.orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double nv_eff =
          time_kernel(*nv, dev, session.grid()).load_efficiency * 100.0;
      const TuneResult t =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, session.grid());
      const double fs_eff = t.best.timing.load_efficiency * 100.0;
      table.add_row({dev.name, std::to_string(order), report::fmt(nv_eff, 1),
                     report::fmt(fs_eff, 1)});
      bars.push_back({"o" + std::to_string(order) + " nv", nv_eff});
      bars.push_back({"o" + std::to_string(order) + " fs", fs_eff});
      nv_sum += nv_eff;
      fs_sum += fs_eff;
      n += 1;
    }
    std::fputs(report::bar_chart("load efficiency (%) on " + dev.name, bars, 40, "%")
                   .c_str(),
               stdout);
    std::fputs("\n", stdout);
  }
  if (n > 0) {
    session.headline("load_efficiency_mean_nvstencil", nv_sum / n, "%");
    session.headline("load_efficiency_mean_fullslice", fs_sum / n, "%");
  }
  session.emit(table, "Fig. 9: Global memory load efficiency (SP)");
  return session.finish();
}
