// Fig. 9: global memory load efficiency (bytes requested / bytes moved) of
// the tuned full-slice kernel vs nvstencil, for all stencil orders on the
// three GPUs.  Expected shape: full-slice above nvstencil for every order
// and device — the better halo coalescing is the whole point of the
// method.

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;

  report::Table table({"GPU", "Order", "nvstencil eff (%)", "full-slice eff (%)"});
  for (const auto& dev : gpusim::paper_devices()) {
    std::vector<report::Bar> bars;
    for (int order : paper_stencil_orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double nv_eff =
          time_kernel(*nv, dev, bench::kGrid).load_efficiency * 100.0;
      const TuneResult t =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, bench::kGrid);
      const double fs_eff = t.best.timing.load_efficiency * 100.0;
      table.add_row({dev.name, std::to_string(order), report::fmt(nv_eff, 1),
                     report::fmt(fs_eff, 1)});
      bars.push_back({"o" + std::to_string(order) + " nv", nv_eff});
      bars.push_back({"o" + std::to_string(order) + " fs", fs_eff});
    }
    std::fputs(report::bar_chart("load efficiency (%) on " + dev.name, bars, 40, "%")
                   .c_str(),
               stdout);
    std::fputs("\n", stdout);
  }
  bench::emit(table, "Fig. 9: Global memory load efficiency (SP)",
              "fig9_load_efficiency");
  return 0;
}
