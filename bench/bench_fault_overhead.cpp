// Fault-injection overhead: wall-clock cost of the hardened execution
// layer when no injector is installed.  The fault hooks sit on the hot
// warp-op path (BlockCtx::step, warp_load), so the disabled path must be
// a single never-taken pointer check — this benchmark measures the
// hardened runner (run_kernel_guarded, faults = nullptr) against the
// plain runner and reports the relative overhead.  Target: < 1%.
//
//   $ ./bench_fault_overhead [repeats] [--strict] [--smoke]
//
// Exits 0 when the measured overhead is under the target (or always,
// without --strict, since CI machines are noisy; the table still shows
// the numbers).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gpusim/fault_injector.hpp"
#include "kernels/runner.hpp"
#include "report/stats.hpp"

namespace {

using namespace inplane;

int run(bench::Session& session, int repeats, bool strict) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const kernels::LaunchConfig cfg{32, 8, 1, 2, 4};
  const auto kernel =
      kernels::make_kernel<float>(kernels::Method::InPlaneFullSlice, cs, cfg);
  const Extent3 extent = session.smoke() ? Extent3{128, 64, 8} : Extent3{256, 256, 64};
  Grid3<float> in = kernels::make_grid_for(*kernel, extent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<float>(std::sin(0.1 * i) + 0.05 * j + 0.01 * k);
  });

  // Warm-up sweep so first-touch page faults don't land in either column.
  {
    Grid3<float> out = kernels::make_grid_for(*kernel, extent);
    kernels::run_kernel(*kernel, in, out, dev);
  }

  std::vector<double> plain_s;
  std::vector<double> guarded_s;
  std::vector<double> injected_s;
  const gpusim::FaultPlan plan =
      gpusim::FaultPlan::parse("seed=5; bitflip:p=0.0,bit=3");
  for (int rep = 0; rep < repeats; ++rep) {
    {
      Grid3<float> out = kernels::make_grid_for(*kernel, extent);
      const report::Stopwatch watch;
      kernels::run_kernel(*kernel, in, out, dev);
      plain_s.push_back(watch.seconds());
    }
    {
      // Hardened runner, no injector: the configuration the tuner and the
      // CLI run by default — this is the path that must stay free.
      Grid3<float> out = kernels::make_grid_for(*kernel, extent);
      const report::Stopwatch watch;
      const kernels::RunReport report =
          kernels::run_kernel_guarded(*kernel, in, out, dev, {});
      guarded_s.push_back(watch.seconds());
      if (!report.status.ok()) {
        std::printf("unexpected failure: %s\n", report.status.to_string().c_str());
        return 1;
      }
    }
    {
      // Installed-but-silent injector (p = 0): the price of arming the
      // hooks, for scale.  Includes one reference-verification pass.
      gpusim::FaultInjector injector(plan);
      Grid3<float> out = kernels::make_grid_for(*kernel, extent);
      kernels::RunOptions ro;
      ro.faults = &injector;
      const report::Stopwatch watch;
      const kernels::RunReport report =
          kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
      injected_s.push_back(watch.seconds());
      if (!report.status.ok()) {
        std::printf("unexpected failure: %s\n", report.status.to_string().c_str());
        return 1;
      }
    }
  }

  const double plain = report::median(plain_s);
  const double guarded = report::median(guarded_s);
  const double injected = report::median(injected_s);
  const double overhead_pct = (guarded / plain - 1.0) * 100.0;
  const double armed_pct = (injected / plain - 1.0) * 100.0;

  report::Table table({"Configuration", "Median wall [s]", "vs plain [%]"});
  table.add_row({"run_kernel (plain)", report::fmt(plain, 4), "0.00"});
  table.add_row({"run_kernel_guarded, no injector", report::fmt(guarded, 4),
                 report::fmt(overhead_pct, 2)});
  table.add_row({"run_kernel_guarded, armed idle injector + verify",
                 report::fmt(injected, 4), report::fmt(armed_pct, 2)});
  session.set_config("repeats", std::to_string(repeats));
  session.emit(table, "fault-injection hook overhead (median of " +
                          std::to_string(repeats) + " repeats)");
  session.headline("guarded_overhead_pct", overhead_pct, "%",
                   /*higher_is_better=*/false, /*noisy=*/true);
  session.headline("armed_overhead_pct", armed_pct, "%",
                   /*higher_is_better=*/false, /*noisy=*/true);

  const bool under_target = overhead_pct < 1.0;
  std::printf("disabled-path overhead: %.2f%% (target < 1%%): %s\n", overhead_pct,
              under_target ? "PASS" : "FAIL");
  const int finish = session.finish();
  if (finish != 0) return finish;
  return (strict && !under_target) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("fault_overhead", argc, argv);
  int repeats = session.smoke() ? 3 : 9;
  bool strict = false;
  for (const std::string& arg : session.args()) {
    if (arg == "--strict") {
      strict = true;
    } else {
      repeats = std::atoi(arg.c_str());
    }
  }
  if (repeats < 3) repeats = 3;
  return run(session, repeats, strict);
}
