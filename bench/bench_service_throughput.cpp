// Tuning service throughput: a cold populate phase (every key sweeps
// once) followed by a concurrent serve phase where simulated clients
// hammer the warm wisdom cache.  The deterministic headlines — hit rate,
// sweep accounting, and bit-identity of every served answer against a
// direct single-process tune() — gate the bench; requests/s is
// wall-clock and marked noisy (a 1-core CI container serves far fewer
// requests than a workstation, but it must serve the *same bytes*).
//
//   $ ./bench_service_throughput [--smoke]

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "bench_common.hpp"
#include "report/stats.hpp"
#include "service/service.hpp"

namespace {

using namespace inplane;
using service::TuneOutcome;
using service::TuneRequest;
using service::TuningService;
using service::WisdomKey;

std::vector<WisdomKey> bench_keys(bench::Session& session) {
  std::vector<WisdomKey> keys;
  for (const char* method : {"fullslice", "classical"}) {
    for (int order : session.orders()) {
      WisdomKey key;
      key.method = method;
      key.device = "gtx580";
      key.order = order;
      key.extent = session.smoke() ? Extent3{64, 32, 8} : session.grid();
      key.kind = "model";
      key.beta = 0.05;
      keys.push_back(key);
    }
  }
  return keys;
}

int run(bench::Session& session) {
  const std::vector<WisdomKey> keys = bench_keys(session);
  const int clients = session.smoke() ? 8 : 32;
  const int requests_per_client = session.smoke() ? 16 : 64;
  // One request in eight bypasses the cache (a client that insists on a
  // fresh sweep) — the only sweeps the serve phase is allowed to run.
  const int no_cache_every = 8;

  TuningService svc(service::ServiceOptions{});

  // Single-process oracle per key, for the bit-identity gate.
  std::vector<std::string> oracle;
  oracle.reserve(keys.size());
  for (const WisdomKey& key : keys) {
    oracle.push_back(autotune::encode_tune_entry(service::direct_tune(key)));
  }

  // --- Phase 1: cold populate — every key sweeps exactly once. -------------
  const report::Stopwatch populate_watch;
  bool identical = true;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    TuneRequest req;
    req.key = keys[i];
    identical = identical && svc.tune(req).entry_payload() == oracle[i];
  }
  const double populate_wall = populate_watch.seconds();
  const service::ServiceCounters after_populate = svc.counters();
  const bool populate_swept_once_per_key =
      after_populate.sweeps == keys.size() && after_populate.cache_hits == 0;

  // --- Phase 2: concurrent serve against the warm cache. -------------------
  std::atomic<std::size_t> mismatches{0};
  const report::Stopwatch serve_watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < requests_per_client; ++r) {
        TuneRequest req;
        req.key = keys[static_cast<std::size_t>(c + r) % keys.size()];
        req.no_cache = (r % no_cache_every) == 0;
        const TuneOutcome out = svc.tune(req);
        const std::string& want = oracle[static_cast<std::size_t>(c + r) % keys.size()];
        if (out.entry_payload() != want) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double serve_wall = serve_watch.seconds();

  const service::ServiceCounters c = svc.counters();
  const std::uint64_t serve_requests = c.requests - after_populate.requests;
  const std::uint64_t serve_sweeps = c.sweeps - after_populate.sweeps;
  const std::uint64_t expected_no_cache =
      static_cast<std::uint64_t>(clients) *
      static_cast<std::uint64_t>((requests_per_client + no_cache_every - 1) /
                                 no_cache_every);
  // Every cached request hit (keys never evict here); every bypass swept.
  const double hit_rate =
      static_cast<double>(c.cache_hits) / static_cast<double>(serve_requests);
  const bool accounting_exact = c.cache_hits == serve_requests - expected_no_cache &&
                                serve_sweeps == expected_no_cache &&
                                c.failures == 0 && c.dedup_joins == 0;
  identical = identical && mismatches.load() == 0;

  report::Table table({"Phase", "Requests", "Sweeps", "Hits", "Wall [s]",
                       "Req/s"});
  table.add_row({"populate", std::to_string(after_populate.requests),
                 std::to_string(after_populate.sweeps), "0",
                 report::fmt(populate_wall, 3),
                 report::fmt(static_cast<double>(after_populate.requests) /
                                 populate_wall, 1)});
  table.add_row({"serve", std::to_string(serve_requests),
                 std::to_string(serve_sweeps), std::to_string(c.cache_hits),
                 report::fmt(serve_wall, 3),
                 report::fmt(static_cast<double>(serve_requests) / serve_wall, 1)});
  session.emit(table, "tuning service throughput (warm wisdom cache)");
  std::printf("bit-identity cross-check: %s\n",
              identical ? "every served entry matches direct_tune()"
                        : "MISMATCH against direct_tune()");

  session.set_config("keys", std::to_string(keys.size()));
  session.set_config("clients", std::to_string(clients));
  session.headline("bit_identical", identical ? 1.0 : 0.0, "bool");
  session.headline("populate_swept_once_per_key",
                   populate_swept_once_per_key ? 1.0 : 0.0, "bool");
  session.headline("accounting_exact", accounting_exact ? 1.0 : 0.0, "bool");
  session.headline("hit_rate", hit_rate, "ratio");
  session.headline("requests_per_s",
                   static_cast<double>(serve_requests) / serve_wall, "req/s",
                   /*higher_is_better=*/true, /*noisy=*/true);
  const int finish = session.finish();
  return (identical && populate_swept_once_per_key && accounting_exact) ? finish
                                                                        : 1;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("service_throughput", argc, argv);
  return run(session);
}
