// Distributed sweep engine: wall-clock of an exhaustive auto-tune sweep
// sharded across worker OS processes by the sweep supervisor, against the
// single-process tuner on the same spec.  Two cross-checks gate the bench:
// the merged distributed best must match the single-process best bit for
// bit at every worker count, and a sweep that loses a worker to an
// injected kill -9 must still converge to the same best (one respawn,
// zero re-measured candidates thanks to the shard journal).
//
// The speedup headlines are wall-clock and marked noisy: on a 1-core CI
// container the extra processes only add supervision overhead, so ~1x is
// the expected graceful floor there (the determinism headlines are the
// real gate).
//
//   $ ./bench_distributed_sweep [--smoke]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "distributed/supervisor.hpp"
#include "distributed/sweep_spec.hpp"
#include "report/stats.hpp"

#ifndef INPLANE_SUPERVISOR_BIN
#error "INPLANE_SUPERVISOR_BIN must point at the sweep_supervisor binary"
#endif

namespace {

using namespace inplane;
using distributed::SupervisorOptions;
using distributed::SweepReport;
using distributed::SweepSpec;

SweepSpec bench_spec(bench::Session& session) {
  SweepSpec spec;
  spec.method = "fullslice";
  spec.device = "gtx580";
  spec.extent = session.grid();
  spec.order = session.smoke() ? 4 : 8;
  spec.kind = "exhaustive";
  return spec;
}

SupervisorOptions options_for(bench::Session& session, const SweepSpec& spec,
                              int workers, const std::string& tag) {
  SupervisorOptions opts;
  opts.spec = spec;
  opts.workers = workers;
  opts.checkpoint_dir = session.results_dir() + "/distributed_ckpt_" + tag;
  opts.worker_exe = INPLANE_SUPERVISOR_BIN;
  opts.backoff_initial_ms = 5.0;
  opts.poll_interval_ms = 5.0;
  return opts;
}

bool same_best(const autotune::TuneResult& got, const autotune::TuneResult& want) {
  return got.found() && want.found() && got.best.config == want.best.config &&
         std::memcmp(&got.best.timing.seconds, &want.best.timing.seconds,
                     sizeof(double)) == 0 &&
         std::memcmp(&got.best.timing.mpoints_per_s,
                     &want.best.timing.mpoints_per_s, sizeof(double)) == 0;
}

int run(bench::Session& session) {
  const SweepSpec spec = bench_spec(session);

  // --- single-process reference (the in-process tuner, one thread). --------
  const report::Stopwatch ref_watch;
  const autotune::TuneResult ref = autotune::exhaustive_tune<float>(
      distributed::resolve_method(spec.method),
      StencilCoeffs::diffusion(spec.radius()),
      distributed::resolve_device(spec.device), spec.extent);
  const double ref_wall = ref_watch.seconds();

  report::Table table({"Mode", "Workers", "Wall [s]", "Speedup", "Spawned",
                       "Lost", "Best", "Best MPt/s"});
  table.add_row({"single", "1", report::fmt(ref_wall, 3), "1.00", "0", "0",
                 ref.best.config.to_string(),
                 report::fmt(ref.best.timing.mpoints_per_s, 1)});

  bool deterministic = true;
  double speedup_2w = 0.0;
  double speedup_4w = 0.0;
  for (int workers : {2, 4}) {
    const std::string tag = std::to_string(workers) + "w";
    const report::Stopwatch watch;
    const SweepReport rep =
        distributed::run_distributed_sweep(options_for(session, spec, workers, tag));
    const double wall = watch.seconds();
    const double speedup = ref_wall / wall;
    (workers == 2 ? speedup_2w : speedup_4w) = speedup;
    deterministic = deterministic && rep.complete && same_best(rep.result, ref);
    table.add_row({"sharded", std::to_string(workers), report::fmt(wall, 3),
                   report::fmt(speedup, 2), std::to_string(rep.workers_spawned),
                   std::to_string(rep.workers_lost),
                   rep.result.best.config.to_string(),
                   report::fmt(rep.result.best.timing.mpoints_per_s, 1)});
  }

  // --- fault-tolerance overhead: kill -9 one worker mid-sweep. -------------
  SupervisorOptions faulted = options_for(session, spec, 2, "kill");
  faulted.worker_fault_spec = "kill@2:w0";
  const report::Stopwatch fault_watch;
  const SweepReport frep = distributed::run_distributed_sweep(faulted);
  const double fault_wall = fault_watch.seconds();
  const bool fault_recovered =
      frep.complete && frep.workers_lost == 1 && same_best(frep.result, ref);
  deterministic = deterministic && fault_recovered;
  table.add_row({"kill@2:w0", "2", report::fmt(fault_wall, 3),
                 report::fmt(ref_wall / fault_wall, 2),
                 std::to_string(frep.workers_spawned),
                 std::to_string(frep.workers_lost),
                 frep.result.best.config.to_string(),
                 report::fmt(frep.result.best.timing.mpoints_per_s, 1)});

  session.emit(table, "distributed sweep wall-clock vs worker count");
  std::printf("determinism cross-check: %s\n",
              deterministic ? "merged best bit-identical to single-process"
                            : "MISMATCH against single-process best");

  session.set_config("method", spec.method);
  session.set_config("order", std::to_string(spec.order));
  session.headline("deterministic", deterministic ? 1.0 : 0.0, "bool");
  session.headline("fault_recovered", fault_recovered ? 1.0 : 0.0, "bool");
  session.headline("speedup_2w", speedup_2w, "x", /*higher_is_better=*/true,
                   /*noisy=*/true);
  session.headline("speedup_4w", speedup_4w, "x", /*higher_is_better=*/true,
                   /*noisy=*/true);
  const int finish = session.finish();
  return deterministic ? finish : 1;
}

}  // namespace

int main(int argc, char** argv) {
  inplane::bench::Session session("distributed_sweep", argc, argv);
  return run(session);
}
