// Fig. 10: breakdown of the contributions to the performance gain over the
// nvstencil baseline, single precision:
//   (i)   nvstencil with register blocking (tuned),
//   (ii)  full-slice without register blocking (tuned over TX, TY),
//   (iii) full-slice with register blocking (fully tuned).
//
// Expected shape: (iii) best everywhere; (i) the smallest gain (~10%); the
// full-slice loading itself contributes roughly twice what register
// blocking adds on top of it (section IV-D).

#include <cstdio>

#include "autotune/tuner.hpp"
#include "bench_common.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("fig10_breakdown", argc, argv);

  SearchSpace full;
  SearchSpace thread_only;
  thread_only.rx_values = {1};
  thread_only.ry_values = {1};

  report::Table table({"GPU", "Order", "nvstencil MPt/s", "nvstencil+RB",
                       "full-slice", "full-slice+RB"});
  struct Avg {
    double nv_rb = 0, fs = 0, fs_rb = 0;
    int n = 0;
  };
  Avg total;
  for (const auto& dev : session.devices()) {
    Avg avg;
    for (int order : session.orders()) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto nv =
          make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
      const double base = time_kernel(*nv, dev, session.grid()).mpoints_per_s;
      const double nv_rb =
          exhaustive_tune<float>(Method::ForwardPlane, cs, dev, session.grid(), full)
              .best.timing.mpoints_per_s;
      const double fs = exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                               session.grid(), thread_only)
                            .best.timing.mpoints_per_s;
      const double fs_rb =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, session.grid(), full)
              .best.timing.mpoints_per_s;
      table.add_row({dev.name, std::to_string(order), report::fmt(base, 0),
                     report::fmt(nv_rb / base, 2) + "x", report::fmt(fs / base, 2) + "x",
                     report::fmt(fs_rb / base, 2) + "x"});
      avg.nv_rb += nv_rb / base;
      avg.fs += fs / base;
      avg.fs_rb += fs_rb / base;
      avg.n += 1;
      total.nv_rb += nv_rb / base;
      total.fs += fs / base;
      total.fs_rb += fs_rb / base;
      total.n += 1;
    }
    std::printf(
        "%s averages: nvstencil+RB %.0f%%, full-slice %.0f%%, full-slice+RB %.0f%% "
        "above baseline (RB on full-slice adds %.0f%%)\n\n",
        dev.name.c_str(), (avg.nv_rb / avg.n - 1.0) * 100.0,
        (avg.fs / avg.n - 1.0) * 100.0, (avg.fs_rb / avg.n - 1.0) * 100.0,
        (avg.fs_rb / avg.fs - 1.0) * 100.0);
  }
  if (total.n > 0) {
    session.headline("nvstencil_rb_speedup_mean", total.nv_rb / total.n, "x");
    session.headline("fullslice_speedup_mean", total.fs / total.n, "x");
    session.headline("fullslice_rb_speedup_mean", total.fs_rb / total.n, "x");
  }
  session.emit(table, "Fig. 10: Breakdown of contributions to performance gain (SP)");
  return session.finish();
}
