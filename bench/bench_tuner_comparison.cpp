// Extension bench: the three tuning strategies side by side — exhaustive
// (section IV-C), model-guided with beta = 5% (section VI), and stochastic
// random-restart hill climbing (the alternative the related work mentions
// for larger spaces) — comparing result quality against configurations
// executed.

#include <cstdio>

#include "autotune/stochastic.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;
  bench::Session session("tuner_comparison", argc, argv);

  report::Table table({"GPU", "Order", "Strategy", "Configs run", "Best MPt/s",
                       "vs exhaustive"});
  const std::vector<int> orders =
      session.smoke() ? std::vector<int>{2} : std::vector<int>{2, 6, 12};
  double model_quality_sum = 0.0;
  double stochastic_quality_sum = 0.0;
  int n = 0;
  for (const auto& dev :
       {gpusim::DeviceSpec::geforce_gtx580(), gpusim::DeviceSpec::geforce_gtx680()}) {
    for (int order : orders) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const TuneResult exh =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, session.grid());
      const TuneResult mod = model_guided_tune<float>(Method::InPlaneFullSlice, cs,
                                                      dev, session.grid(), 0.05);
      StochasticOptions opt;
      opt.max_evaluations = static_cast<int>(mod.executed);  // equal budget
      const TuneResult sto = stochastic_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                                    session.grid(), opt);
      const double best = exh.best.timing.mpoints_per_s;
      auto row = [&](const char* name, const TuneResult& t) {
        table.add_row({dev.name, std::to_string(order), name,
                       std::to_string(t.executed),
                       report::fmt(t.best.timing.mpoints_per_s, 1),
                       report::fmt(t.best.timing.mpoints_per_s / best * 100.0, 1) +
                           "%"});
      };
      row("exhaustive", exh);
      row("model-guided (5%)", mod);
      row("stochastic", sto);
      model_quality_sum += mod.best.timing.mpoints_per_s / best * 100.0;
      stochastic_quality_sum += sto.best.timing.mpoints_per_s / best * 100.0;
      n += 1;
    }
  }
  if (n > 0) {
    session.headline("model_quality_mean", model_quality_sum / n, "%");
    session.headline("stochastic_quality_mean", stochastic_quality_sum / n, "%");
  }
  session.emit(table, "Extension: tuning-strategy comparison (SP, full-slice)");
  return session.finish();
}
