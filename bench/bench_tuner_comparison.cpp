// Extension bench: the three tuning strategies side by side — exhaustive
// (section IV-C), model-guided with beta = 5% (section VI), and stochastic
// random-restart hill climbing (the alternative the related work mentions
// for larger spaces) — comparing result quality against configurations
// executed.

#include <cstdio>

#include "autotune/stochastic.hpp"
#include "bench_common.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::kernels;
  using namespace inplane::autotune;

  report::Table table({"GPU", "Order", "Strategy", "Configs run", "Best MPt/s",
                       "vs exhaustive"});
  for (const auto& dev :
       {gpusim::DeviceSpec::geforce_gtx580(), gpusim::DeviceSpec::geforce_gtx680()}) {
    for (int order : {2, 6, 12}) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const TuneResult exh =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, bench::kGrid);
      const TuneResult mod = model_guided_tune<float>(Method::InPlaneFullSlice, cs,
                                                      dev, bench::kGrid, 0.05);
      StochasticOptions opt;
      opt.max_evaluations = static_cast<int>(mod.executed);  // equal budget
      const TuneResult sto = stochastic_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                                    bench::kGrid, opt);
      const double best = exh.best.timing.mpoints_per_s;
      auto row = [&](const char* name, const TuneResult& t) {
        table.add_row({dev.name, std::to_string(order), name,
                       std::to_string(t.executed),
                       report::fmt(t.best.timing.mpoints_per_s, 1),
                       report::fmt(t.best.timing.mpoints_per_s / best * 100.0, 1) +
                           "%"});
      };
      row("exhaustive", exh);
      row("model-guided (5%)", mod);
      row("stochastic", sto);
    }
  }
  inplane::bench::emit(table, "Extension: tuning-strategy comparison (SP, full-slice)",
                       "tuner_comparison");
  return 0;
}
