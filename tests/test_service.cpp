// Concurrency/property harness for the tuning-as-a-service layer:
// cache-hit/no-sweep pinning, in-flight dedup determinism, a >= 32-thread
// mixed-traffic stress run whose answers are bit-identical to a direct
// single-process tune(), per-request QoS (deadline + memory budget),
// socket end-to-end protocol, distributed fan-out bit-identity, the
// fingerprint cross-implementation law, and the core/process.hpp
// ChildProcess edge cases the daemon's supervision depends on.

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/fingerprint.hpp"
#include "core/process.hpp"
#include "core/status.hpp"
#include "distributed/sweep_spec.hpp"
#include "gpusim/device.hpp"
#include "kernels/resources.hpp"
#include "kernels/stencil_kernel.hpp"
#include "metrics/metrics.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace fs = std::filesystem;
using namespace inplane;
using service::Source;
using service::TuneOutcome;
using service::TuneRequest;
using service::TuningService;
using service::WisdomKey;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Tiny-grid model-guided keys: each sweep is a few ms, so real sweeps
/// are affordable inside the stress tests.
WisdomKey small_key(int i) {
  WisdomKey key;
  key.method = (i % 2 == 0) ? "fullslice" : "classical";
  key.device = "gtx580";
  key.order = 2 + 2 * (i % 2);
  key.extent = Extent3{64, 32, 8 + 4 * (i / 2)};
  key.kind = "model";
  key.beta = 0.05;
  return key;
}

std::string temp_name(const char* tag) {
  static std::atomic<int> n{0};
  return (fs::temp_directory_path() /
          ("svc_test_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           "_" + std::to_string(n.fetch_add(1))))
      .string();
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::remove(path + ".orphan", ec);
    fs::remove(path + ".tmp", ec);
  }
};

std::string oracle_payload(const WisdomKey& key) {
  return autotune::encode_tune_entry(service::direct_tune(key));
}

// ------------------------------------------------- fingerprint law --

TEST(FingerprintCrossImpl, EveryLayerDerivesTheSameProblemFingerprint) {
  const auto device = gpusim::DeviceSpec::geforce_gtx580();
  const Extent3 extent{128, 64, 16};

  // Layer 1: the raw primitive, fed the canonical vocabulary (the
  // kernels::to_string method name and the device's display name — NOT
  // the CLI aliases "fullslice"/"gtx580", which every layer resolves
  // before hashing).
  const std::uint64_t raw = autotune::problem_fingerprint(
      kernels::to_string(kernels::Method::InPlaneFullSlice), device.name,
      extent, sizeof(float), "exhaustive");

  // Layer 2: the shared CheckpointKey constructor (tuner journals).
  const autotune::CheckpointKey ck = autotune::make_checkpoint_key(
      kernels::Method::InPlaneFullSlice, device, extent, sizeof(float),
      "exhaustive");
  EXPECT_EQ(ck.fingerprint(), raw);

  // Layer 3: the distributed sweep spec (shard journals).
  distributed::SweepSpec spec;
  spec.method = "fullslice";
  spec.device = "gtx580";
  spec.extent = extent;
  spec.order = 4;
  spec.kind = "exhaustive";
  EXPECT_EQ(distributed::checkpoint_key(spec, extent).fingerprint(), raw);

  // Layer 4: the wisdom key chains the same primitive (widened by order,
  // device fingerprint and beta — so it must *differ*, deterministically).
  WisdomKey wk;
  wk.method = "fullslice";
  wk.device = "gtx580";
  wk.extent = extent;
  wk.order = 4;
  wk.kind = "exhaustive";
  EXPECT_NE(wk.fingerprint(), raw);
  EXPECT_EQ(wk.fingerprint(), wk.canonical().fingerprint());
}

TEST(FingerprintCrossImpl, DeviceFingerprintSeesNumericFieldsNotJustTheName) {
  auto a = gpusim::DeviceSpec::geforce_gtx580();
  auto b = a;
  EXPECT_EQ(autotune::device_fingerprint(a), autotune::device_fingerprint(b));
  b.achieved_bw_gbs += 1.0;
  EXPECT_NE(autotune::device_fingerprint(a), autotune::device_fingerprint(b));
  auto c = a;
  c.sm_count += 1;
  EXPECT_NE(autotune::device_fingerprint(a), autotune::device_fingerprint(c));
}

// ------------------------------------------------ ChildProcess edges --

TEST(ChildProcessEdge, SpawnOfNonexistentBinaryThrowsIoError) {
  EXPECT_THROW(
      (void)core::ChildProcess::spawn({"/nonexistent/inplane_no_such_binary"}),
      IoError);
}

TEST(ChildProcessEdge, SpawnOfEmptyArgvThrowsInvalidConfig) {
  EXPECT_THROW((void)core::ChildProcess::spawn({}), InvalidConfigError);
}

TEST(ChildProcessEdge, WaitOnDefaultConstructedThrows) {
  core::ChildProcess p;
  EXPECT_FALSE(p.valid());
  EXPECT_THROW((void)p.wait(), InternalError);
}

TEST(ChildProcessEdge, PollTerminateKillOnDefaultConstructedAreSafe) {
  core::ChildProcess p;
  EXPECT_EQ(p.poll(), std::nullopt);
  p.terminate();  // must be no-ops, not crashes
  p.kill_hard();
  EXPECT_EQ(p.poll(), std::nullopt);
}

TEST(ChildProcessEdge, DoubleWaitReturnsTheCachedStatus) {
  auto p = core::ChildProcess::spawn({"/bin/sh", "-c", "exit 7"});
  const core::ExitStatus first = p.wait();
  EXPECT_TRUE(first.exited);
  EXPECT_EQ(first.code, 7);
  // The second wait must not block, throw, or reap someone else's child.
  const core::ExitStatus second = p.wait();
  EXPECT_TRUE(second.exited);
  EXPECT_EQ(second.code, 7);
  const auto polled = p.poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->code, 7);
}

TEST(ChildProcessEdge, KillImmediatelyAfterSpawnReportsTheSignal) {
  // Signal delivered before the child gets anywhere: spawn must have
  // fully attached the pid by the time it returns, so the kill lands on
  // our child and wait() reports the signal (never a lost process).
  auto p = core::ChildProcess::spawn({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(p.valid());
  p.kill_hard();
  const core::ExitStatus status = p.wait();
  EXPECT_TRUE(status.signalled);
  EXPECT_EQ(status.signal, SIGKILL);
  EXPECT_FALSE(status.success());
}

TEST(ChildProcessEdge, TerminateAfterReapIsANoOp) {
  auto p = core::ChildProcess::spawn({"/bin/true"});
  (void)p.wait();
  p.terminate();  // child already reaped; the pid must not be re-signalled
  p.kill_hard();
  EXPECT_TRUE(p.poll().has_value());
}

// ----------------------------------------------------- service core --

TEST(Service, CacheHitServesRepeatTuneWithoutAnySweep) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);

  const TuneOutcome first = svc.tune(req);
  EXPECT_EQ(first.source, Source::Swept);
  const TuneOutcome second = svc.tune(req);
  EXPECT_EQ(second.source, Source::CacheHit);
  EXPECT_EQ(second.entry_payload(), first.entry_payload());

  // The pin: exactly one sweep for two requests.
  const service::ServiceCounters c = svc.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.sweeps, 1u);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.failures, 0u);
}

TEST(Service, AnswersAreBitIdenticalToDirectTune) {
  TuningService svc(service::ServiceOptions{});
  for (int i = 0; i < 3; ++i) {
    TuneRequest req;
    req.key = small_key(i);
    const TuneOutcome out = svc.tune(req);
    EXPECT_EQ(out.entry_payload(), oracle_payload(small_key(i))) << i;
  }
}

TEST(Service, NoCacheBypassesBothCacheAndDedup) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.no_cache = true;
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
  // Nothing was published: a normal request still has to sweep.
  req.no_cache = false;
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
  EXPECT_EQ(svc.counters().sweeps, 3u);
  // ... and that one *was* published.
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
}

TEST(Service, StampRejectsUnknownDeviceAndMethodLoudly) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.key.device = "vega";
  EXPECT_THROW((void)svc.tune(req), InvalidConfigError);
  req.key = small_key(0);
  req.key.method = "warp9";
  EXPECT_THROW((void)svc.tune(req), InvalidConfigError);
  EXPECT_EQ(svc.counters().failures, 2u);
}

TEST(Service, WisdomPersistsAcrossServiceRestarts) {
  const PathGuard guard(temp_name("wisdom"));
  std::string payload;
  {
    service::ServiceOptions opts;
    opts.wisdom_path = guard.path;
    TuningService svc(opts);
    TuneRequest req;
    req.key = small_key(1);
    payload = svc.tune(req).entry_payload();
  }
  service::ServiceOptions opts;
  opts.wisdom_path = guard.path;
  TuningService svc(opts);
  TuneRequest req;
  req.key = small_key(1);
  const TuneOutcome out = svc.tune(req);
  EXPECT_EQ(out.source, Source::CacheHit);
  EXPECT_EQ(out.entry_payload(), payload);
  EXPECT_EQ(svc.counters().sweeps, 0u);
}

// End-to-end temporal-degree key: a degree-2 request sweeps the widened
// {tb=1, tb=2} axis, caches under its own identity (no aliasing with the
// single-step key for the same problem), and never answers with a
// resource-violating degree.
TEST(Service, TemporalDegreeKeysSweepAndCacheSeparately) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);  // fullslice, order 2, nz = 8 > tb * r
  req.key.temporal_degree = 2;

  const TuneOutcome first = svc.tune(req);
  EXPECT_EQ(first.source, Source::Swept);
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
  // The answer's config carries a degree inside the requested axis, and
  // the kernel it names passes its own resource validation.
  EXPECT_GE(first.best.config.tb, 1);
  EXPECT_LE(first.best.config.tb, 2);
  const auto kernel = kernels::make_kernel<float>(
      kernels::Method::InPlaneFullSlice, StencilCoeffs::diffusion(1),
      first.best.config);
  EXPECT_FALSE(kernel->validate(gpusim::DeviceSpec::geforce_gtx580(),
                                req.key.extent)
                   .has_value());

  // The single-step key for the same problem is a distinct cache slot.
  TuneRequest single = req;
  single.key.temporal_degree = 1;
  EXPECT_EQ(svc.tune(single).source, Source::Swept);
  EXPECT_EQ(svc.counters().sweeps, 2u);

  // ... and it answers exactly what the pre-degree service answered.
  EXPECT_EQ(svc.tune(single).entry_payload(), oracle_payload(single.key));

  // Out-of-range degrees are loudly rejected, never swept.
  TuneRequest bad = req;
  bad.key.temporal_degree = 9;
  EXPECT_THROW((void)svc.tune(bad), InvalidConfigError);
}

TEST(ServiceQos, DeadlineFiresAsResourceExhaustedAndIsNotCached) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.deadline_ms = 1e-6;  // fires on the first poll
  EXPECT_THROW((void)svc.tune(req), ResourceExhaustedError);
  EXPECT_EQ(svc.counters().failures, 1u);
  // The failure was not cached: a sane retry sweeps and succeeds.
  req.deadline_ms = 0.0;
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
}

TEST(ServiceQos, ExternalCancelTokenIsHonoured) {
  TuningService svc(service::ServiceOptions{});
  CancelToken cancel;
  cancel.cancel();
  TuneRequest req;
  req.key = small_key(0);
  req.cancel = &cancel;
  EXPECT_THROW((void)svc.tune(req), ResourceExhaustedError);
}

TEST(ServiceQos, BudgetDegradedSweepAnswersButIsNeverCached) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.mem_budget_bytes = 1;  // denies every reservation; floor = 1 candidate
  const TuneOutcome degraded = svc.tune(req);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.best.timing.valid);

  // A full-fidelity request must re-sweep (the degraded answer was not
  // published) and match the oracle.
  req.mem_budget_bytes = 0;
  const TuneOutcome full = svc.tune(req);
  EXPECT_EQ(full.source, Source::Swept);
  EXPECT_FALSE(full.degraded);
  EXPECT_EQ(full.entry_payload(), oracle_payload(small_key(0)));
  EXPECT_EQ(svc.counters().sweeps, 2u);
}

TEST(ServiceMetrics, CountersAreMirroredIntoTheRegistry) {
  metrics::Registry::global().reset();
  metrics::set_enabled(true);
  {
    TuningService svc(service::ServiceOptions{});
    TuneRequest req;
    req.key = small_key(0);
    (void)svc.tune(req);
    (void)svc.tune(req);
  }
  metrics::set_enabled(false);
  double requests = -1.0, hits = -1.0, sweeps = -1.0;
  for (const auto& entry : metrics::Registry::global().snapshot()) {
    if (entry.name == "service.requests") requests = entry.value;
    if (entry.name == "service.cache_hits") hits = entry.value;
    if (entry.name == "service.sweeps") sweeps = entry.value;
  }
  EXPECT_EQ(requests, 2.0);
  EXPECT_EQ(hits, 1.0);
  EXPECT_EQ(sweeps, 1.0);
  metrics::Registry::global().reset();
}

// -------------------------------------------------- dedup determinism --

TEST(ServiceDedup, ConcurrentIdenticalRequestsShareExactlyOneSweep) {
  constexpr int kThreads = 8;

  // The leader blocks in the sweep-start hook until every other thread
  // has registered as a joiner — making "N identical concurrent requests,
  // one sweep" a deterministic fact rather than a race we hope for.
  std::atomic<TuningService*> svc_ptr{nullptr};
  service::ServiceOptions opts;
  opts.on_sweep_start = [&](const WisdomKey&) {
    TuningService* svc = nullptr;
    while ((svc = svc_ptr.load()) == nullptr) std::this_thread::yield();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (svc->counters().dedup_joins <
               static_cast<std::uint64_t>(kThreads - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  TuningService svc(opts);
  svc_ptr.store(&svc);

  std::mutex mu;
  std::vector<TuneOutcome> outcomes;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TuneRequest req;
      req.key = small_key(0);
      const TuneOutcome out = svc.tune(req);
      std::lock_guard<std::mutex> lock(mu);
      outcomes.push_back(out);
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kThreads));
  int swept = 0, joined = 0;
  for (const TuneOutcome& out : outcomes) {
    if (out.source == Source::Swept) ++swept;
    if (out.source == Source::Joined) ++joined;
    EXPECT_EQ(out.entry_payload(), outcomes.front().entry_payload());
  }
  EXPECT_EQ(swept, 1);
  EXPECT_EQ(joined, kThreads - 1);

  const service::ServiceCounters c = svc.counters();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(c.sweeps, 1u);
  EXPECT_EQ(c.dedup_joins, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(c.cache_hits, 0u);

  // Everyone after the melee hits the cache.
  TuneRequest req;
  req.key = small_key(0);
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
}

TEST(ServiceDedup, JoinerDeadlineDoesNotCancelTheLeader) {
  std::atomic<bool> leader_entered{false};
  std::atomic<bool> release_leader{false};
  service::ServiceOptions opts;
  opts.on_sweep_start = [&](const WisdomKey&) {
    leader_entered.store(true);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!release_leader.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  TuningService svc(opts);

  std::thread leader([&] {
    TuneRequest req;
    req.key = small_key(0);
    EXPECT_EQ(svc.tune(req).source, Source::Swept);
  });
  while (!leader_entered.load()) std::this_thread::yield();

  // A joiner with a tiny deadline gives up on the shared future without
  // touching the in-flight sweep.
  TuneRequest hurried;
  hurried.key = small_key(0);
  hurried.deadline_ms = 5.0;
  EXPECT_THROW((void)svc.tune(hurried), ResourceExhaustedError);

  release_leader.store(true);
  leader.join();
  EXPECT_EQ(svc.counters().sweeps, 1u);
  // The leader's answer landed in the cache despite the joiner bailing.
  TuneRequest req;
  req.key = small_key(0);
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
}

// ------------------------------------------------------ stress harness --

TEST(ServiceStress, ThirtyTwoThreadsMixedTrafficBitIdenticalToDirectTune) {
  constexpr int kThreads = 32;
  constexpr int kOpsPerThread = 6;
  constexpr int kKeys = 4;

  // Capacity below the key-pool size, persisted wisdom: evictions,
  // compactions and re-sweeps all happen under fire.
  const PathGuard guard(temp_name("stress"));
  service::ServiceOptions opts;
  opts.wisdom_path = guard.path;
  opts.cache_capacity = 3;
  TuningService svc(opts);

  // Single-process oracle per key, computed up front.
  std::map<int, std::string> oracle;
  for (int k = 0; k < kKeys; ++k) oracle[k] = oracle_payload(small_key(k));

  std::atomic<int> hits{0}, sweeps{0}, joins{0}, cancelled{0}, degraded{0};
  std::mutex mu;
  std::vector<std::string> mismatches;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 0x5eed0000 + static_cast<std::uint64_t>(t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int k = static_cast<int>(splitmix64(rng) % kKeys);
        TuneRequest req;
        req.key = small_key(k);
        const std::uint64_t roll = splitmix64(rng) % 12;
        if (roll == 0) req.no_cache = true;
        if (roll == 1) req.deadline_ms = 1e-6;  // doomed: QoS failure path
        if (roll == 2) req.mem_budget_bytes = 1;  // degraded path
        try {
          const TuneOutcome out = svc.tune(req);
          switch (out.source) {
            case Source::CacheHit: hits.fetch_add(1); break;
            case Source::Swept: sweeps.fetch_add(1); break;
            case Source::Joined: joins.fetch_add(1); break;
          }
          if (out.degraded) {
            degraded.fetch_add(1);
          } else if (out.entry_payload() != oracle[k]) {
            std::lock_guard<std::mutex> lock(mu);
            mismatches.push_back("key " + std::to_string(k) + " from thread " +
                                 std::to_string(t));
          }
        } catch (const ResourceExhaustedError&) {
          cancelled.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every non-degraded answer — hit, swept, or joined, cached before or
  // after an eviction — is bit-identical to the direct tune.
  EXPECT_TRUE(mismatches.empty()) << mismatches.size() << " mismatches, first: "
                                  << mismatches.front();

  const service::ServiceCounters c = svc.counters();
  const int answered = hits.load() + sweeps.load() + joins.load();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(answered + cancelled.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(c.failures, static_cast<std::uint64_t>(cancelled.load()));
  EXPECT_EQ(c.cache_hits, static_cast<std::uint64_t>(hits.load()));
  EXPECT_GE(c.dedup_joins, static_cast<std::uint64_t>(joins.load()));
  EXPECT_GT(c.sweeps, 0u);
  // The whole point of the service: far fewer sweeps than requests.
  EXPECT_LT(c.sweeps, c.requests);
  EXPECT_LE(svc.cache().size(), opts.cache_capacity);

  // The surviving wisdom reloads cleanly and stays bit-identical.
  service::ServiceOptions reopened;
  reopened.wisdom_path = guard.path;
  reopened.cache_capacity = 3;
  TuningService svc2(reopened);
  for (const WisdomKey& key : svc2.cache().lru_order()) {
    TuneRequest req;
    req.key = key;
    const TuneOutcome out = svc2.tune(req);
    EXPECT_EQ(out.source, Source::CacheHit);
    // Identify which pool key this is and compare against its oracle.
    for (int k = 0; k < kKeys; ++k) {
      if (svc2.stamp(small_key(k)) == key) {
        EXPECT_EQ(out.entry_payload(), oracle[k]);
      }
    }
  }
}

// ------------------------------------------------------ socket layer --

std::string temp_socket() {
  static std::atomic<int> n{0};
  return "/tmp/svc_sock_" + std::to_string(::getpid()) + "_" +
         std::to_string(n.fetch_add(1));
}

TEST(ServiceSocket, EndToEndProtocolOverAfUnix) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path);
  server.start();
  EXPECT_TRUE(server.running());

  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");

  const WisdomKey key = small_key(0);
  const auto first = service::parse_response(
      client.roundtrip("TUNE " + key.to_line()));
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok);
  EXPECT_EQ(first->source, "swept");
  EXPECT_EQ(first->entry_payload, oracle_payload(key));

  const auto second = service::parse_response(
      client.roundtrip("TUNE " + key.to_line()));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->source, "hit");
  EXPECT_EQ(second->entry_payload, first->entry_payload);

  const auto run = service::parse_response(
      client.roundtrip("RUN " + key.to_line()));
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->ok);
  EXPECT_EQ(run->source, "hit");
  EXPECT_GT(run->tx, 0);
  EXPECT_GT(run->mpoints, 0.0);

  // Malformed and doomed requests answer with taxonomy codes, in order.
  const auto bad = service::parse_response(client.roundtrip("TUNE nonsense"));
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->ok);
  EXPECT_EQ(bad->err_code, 2);
  const auto late = service::parse_response(
      client.roundtrip("TUNE " + small_key(1).to_line() + " deadline_ms=1e-6"));
  ASSERT_TRUE(late.has_value());
  EXPECT_FALSE(late->ok);
  EXPECT_EQ(late->err_code, 5);

  const std::string stats = client.roundtrip("STATS");
  EXPECT_EQ(stats.rfind("OK ", 0), 0u) << stats;
  EXPECT_NE(stats.find("cache_hits="), std::string::npos);

  server.stop();
}

TEST(ServiceSocket, ConcurrentClientsAgreeBitForBit) {
  constexpr int kClients = 8;
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path);
  server.start();

  std::mutex mu;
  std::vector<std::string> payloads;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      const auto resp = service::tune_over_socket(path, small_key(2));
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(resp.ok) << resp.message;
      payloads.push_back(resp.entry_payload);
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kClients));
  const std::string oracle = oracle_payload(small_key(2));
  for (const std::string& p : payloads) EXPECT_EQ(p, oracle);
  EXPECT_EQ(svc.counters().sweeps, 1u)
      << "concurrent socket clients must dedup onto one sweep";
  server.stop();
}

TEST(ServiceSocket, ShutdownRequestDrainsAndWaitReturns) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path);
  server.start();

  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("SHUTDOWN"), "OK bye");
  server.wait();  // must return promptly once SHUTDOWN lands
  EXPECT_FALSE(server.running());
  EXPECT_TRUE(server.cancel_token().cancelled());
}

// -------------------------------------------------- distributed fan-out --

TEST(ServiceFanOut, CacheMissSweepAcrossWorkerFleetIsBitIdentical) {
  const PathGuard guard(temp_name("fanout"));
  fs::create_directories(guard.path);

  service::ServiceOptions opts;
  opts.fan_out_workers = 2;
  opts.fan_out_dir = guard.path;
  opts.fan_out_worker_exe = INPLANE_SUPERVISOR_BIN;
  TuningService svc(opts);

  WisdomKey key;
  key.method = "fullslice";
  key.device = "gtx580";
  key.order = 2;
  key.extent = Extent3{64, 32, 8};
  key.kind = "exhaustive";

  TuneRequest req;
  req.key = key;
  const TuneOutcome out = svc.tune(req);
  EXPECT_EQ(out.source, Source::Swept);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.entry_payload(), oracle_payload(key))
      << "fan-out sweep must be bit-identical to the single-process tune";

  // The fanned-out answer is cached like any other.
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
  EXPECT_EQ(svc.counters().sweeps, 1u);
}

// ------------------------------------------------ overload hardening --

TEST(LineFramer, SplitsLinesStripsCrAndSkipsEmpties) {
  service::LineFramer framer(64);
  EXPECT_TRUE(framer.feed("PING\r\nSTA", 9));
  const auto first = framer.next_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "PING");  // trailing '\r' stripped
  EXPECT_FALSE(framer.next_line().has_value()) << "STA is not a complete line yet";
  EXPECT_EQ(framer.pending_bytes(), 3u);
  EXPECT_TRUE(framer.feed("TS\n\n\nX\n", 7));
  EXPECT_EQ(framer.next_line().value(), "STATS");
  EXPECT_EQ(framer.next_line().value(), "X") << "empty lines are skipped";
  EXPECT_FALSE(framer.next_line().has_value());
  EXPECT_EQ(framer.pending_bytes(), 0u);
}

TEST(LineFramer, OversizedUnterminatedFramePoisonsInConstantMemory) {
  service::LineFramer framer(16);
  const std::string chunk(8, 'a');
  EXPECT_TRUE(framer.feed(chunk.data(), chunk.size()));
  EXPECT_TRUE(framer.feed(chunk.data(), chunk.size()));  // exactly at the limit
  EXPECT_FALSE(framer.overflowed());
  EXPECT_FALSE(framer.feed("b", 1));  // 17th pending byte: poison
  EXPECT_TRUE(framer.overflowed());
  EXPECT_EQ(framer.pending_bytes(), 0u) << "poison must discard the buffer";
  EXPECT_FALSE(framer.next_line().has_value());
  // Poison is sticky: even clean newline-terminated input is swallowed.
  EXPECT_FALSE(framer.feed("PING\n", 5));
  EXPECT_FALSE(framer.next_line().has_value());
}

TEST(LineFramer, NewlinesResetTheFrameBudget) {
  service::LineFramer framer(8);
  // Many short lines in one big feed must NOT trip the per-frame limit.
  const std::string batch = "AAAA\nBBBB\nCCCC\nDDDD\n";
  EXPECT_TRUE(framer.feed(batch.data(), batch.size()));
  EXPECT_FALSE(framer.overflowed());
  int lines = 0;
  while (framer.next_line().has_value()) ++lines;
  EXPECT_EQ(lines, 4);
  EXPECT_EQ(framer.pending_bytes(), 0u);
}

TEST(ProtocolOverload, OverloadedAndDrainingLinesRoundTrip) {
  const auto shed = service::parse_response(
      service::format_overloaded(123.4, "server at max in-flight sweeps (4)"));
  ASSERT_TRUE(shed.has_value());
  EXPECT_FALSE(shed->ok);
  EXPECT_TRUE(shed->overloaded());
  EXPECT_FALSE(shed->draining());
  EXPECT_EQ(shed->err_name, "overloaded");
  EXPECT_EQ(shed->err_code, 5) << "sheds map onto the ResourceExhausted exit code";
  EXPECT_NEAR(shed->retry_after_ms, 123.0, 0.5);
  EXPECT_EQ(shed->message, "server at max in-flight sweeps (4)");

  const auto drain = service::parse_response(
      service::format_draining("server is draining; retry against the replacement"));
  ASSERT_TRUE(drain.has_value());
  EXPECT_TRUE(drain->draining());
  EXPECT_FALSE(drain->overloaded());
  EXPECT_EQ(drain->err_code, 5);

  // Plain numeric errors keep err_name empty; unknown symbolic codes are
  // loudly rejected, never guessed at.
  const auto plain = service::parse_response("ERR code=2 bad key");
  ASSERT_TRUE(plain.has_value());
  EXPECT_TRUE(plain->err_name.empty());
  EXPECT_FALSE(plain->overloaded());
  EXPECT_FALSE(service::parse_response("ERR code=banana nope").has_value());
}

// Blocking sweep gate: on_sweep_start parks every armed leader until
// open() — the deterministic way to hold a sweep in flight.
struct SweepGate {
  std::mutex mu;
  std::condition_variable cv;
  bool armed = false;
  bool entered = false;
  bool release = false;

  void arm() {
    std::lock_guard<std::mutex> lock(mu);
    armed = true;
    entered = false;
    release = false;
  }
  void hook(const WisdomKey&) {
    std::unique_lock<std::mutex> lock(mu);
    if (!armed) return;
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }
  void wait_entered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    armed = false;
    cv.notify_all();
  }
};

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

enum class RawRead { Line, Closed, Timeout };

/// Reads until one full line, a close, or the timeout.
RawRead raw_read_line(int fd, std::string* line, int timeout_ms) {
  std::string buffer;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      *line = buffer.substr(0, nl);
      return RawRead::Line;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) return RawRead::Timeout;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now).count());
    const int pr = ::poll(&pfd, 1, remaining);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return RawRead::Closed;
    }
    if (pr == 0) return RawRead::Timeout;
    char chunk[512];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return RawRead::Closed;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(ServiceHardening, OversizedFrameGetsTypedErrorAndClose) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::ServerOptions opts;
  opts.max_frame_bytes = 64;
  service::SocketServer server(svc, path, opts);
  server.start();

  const int fd = raw_connect(path);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(raw_send(fd, std::string(200, 'A')));  // no newline, > limit
  std::string line;
  ASSERT_EQ(raw_read_line(fd, &line, 5000), RawRead::Line) << "typed reject expected";
  EXPECT_EQ(line.rfind("ERR code=2", 0), 0u) << line;
  // ... and the connection is closed right after the reject.
  EXPECT_EQ(raw_read_line(fd, &line, 5000), RawRead::Closed);
  ::close(fd);

  EXPECT_GE(server.stats().frame_errors, 1u);
  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong") << "server must survive the attack";
  server.stop();
}

TEST(ServiceHardening, SlowLorisIsReapedAtTheReadDeadline) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::ServerOptions opts;
  opts.read_deadline_ms = 150.0;
  service::SocketServer server(svc, path, opts);
  server.start();

  // Half a request, then silence: the server must answer a typed
  // deadline error and drop the connection — never wait forever.
  const int half = raw_connect(path);
  ASSERT_GE(half, 0);
  EXPECT_TRUE(raw_send(half, "PI"));
  std::string line;
  ASSERT_EQ(raw_read_line(half, &line, 5000), RawRead::Line);
  EXPECT_EQ(line.rfind("ERR code=5", 0), 0u) << line;
  EXPECT_EQ(raw_read_line(half, &line, 5000), RawRead::Closed);
  ::close(half);

  // A fully idle connection is reaped silently (no half-request to answer).
  const int idle = raw_connect(path);
  ASSERT_GE(idle, 0);
  EXPECT_EQ(raw_read_line(idle, &line, 5000), RawRead::Closed);
  ::close(idle);

  EXPECT_GE(server.stats().deadline_drops, 2u);
  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
  server.stop();
}

TEST(ServiceHardening, GarbageBytesAnswerTypedErrorAndServerSurvives) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path, service::ServerOptions{});
  server.start();

  const int fd = raw_connect(path);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(raw_send(fd, std::string("\x01\x7f\x02 garbage \xff\n", 14)));
  std::string line;
  ASSERT_EQ(raw_read_line(fd, &line, 5000), RawRead::Line);
  EXPECT_EQ(line.rfind("ERR code=2", 0), 0u) << line;
  // A garbage *line* is an answered request, not a framing violation:
  // the connection stays usable.
  EXPECT_TRUE(raw_send(fd, "PING\n"));
  ASSERT_EQ(raw_read_line(fd, &line, 5000), RawRead::Line);
  EXPECT_EQ(line, "OK pong");
  ::close(fd);
  server.stop();
}

TEST(ServiceHardening, AdmissionShedsWithRetryAfterButServesHitsAndPing) {
  auto gate = std::make_shared<SweepGate>();
  service::ServiceOptions sopts;
  sopts.on_sweep_start = [gate](const WisdomKey& key) { gate->hook(key); };
  TuningService svc(sopts);

  // Warm the cache with key 0 while the gate is disarmed.
  TuneRequest warm;
  warm.key = small_key(0);
  const std::string warm_payload = svc.tune(warm).entry_payload();

  const std::string path = temp_socket();
  service::ServerOptions opts;
  opts.max_inflight = 1;
  opts.retry_after_base_ms = 40.0;
  service::SocketServer server(svc, path, opts);
  server.start();

  gate->arm();
  std::thread leader([&] {
    const auto resp = service::tune_over_socket(path, small_key(1));
    EXPECT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.entry_payload, oracle_payload(small_key(1)));
  });
  gate->wait_entered();  // the only sweep slot is now held

  // A second cache-missing request is shed with the typed overload line
  // and a usable retry hint...
  const auto shed = service::tune_over_socket(path, small_key(2));
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.overloaded()) << shed.message;
  EXPECT_EQ(shed.err_code, 5);
  EXPECT_GT(shed.retry_after_ms, 0.0) << "sheds must carry retry_after_ms";

  // ... while cache hits and PING/STATS are never shed.
  const auto hit = service::tune_over_socket(path, small_key(0));
  EXPECT_TRUE(hit.ok) << hit.message;
  EXPECT_EQ(hit.source, "hit");
  EXPECT_EQ(hit.entry_payload, warm_payload);
  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
  const std::string stats = client.roundtrip("STATS");
  EXPECT_NE(stats.find("shed_requests="), std::string::npos) << stats;
  EXPECT_NE(stats.find("breaker_state="), std::string::npos) << stats;
  EXPECT_GE(server.stats().shed_requests, 1u);

  gate->open();
  leader.join();
  server.stop();
}

TEST(ServiceHardening, ClientRetryBacksOffOnConnectRefusedAndOverloaded) {
  // Connect-refused: retried up to the budget with jittered local
  // backoff, then the IoError propagates.
  std::vector<double> sleeps;
  service::RetryOptions retry;
  retry.budget = 2;
  retry.sleeper = [&](double ms) { sleeps.push_back(ms); };
  int attempts = 0;
  EXPECT_THROW(
      {
        const auto r = service::request_with_retry("/tmp/svc_no_such_sock", "PING",
                                                   retry, &attempts);
        (void)r;
      },
      IoError);
  EXPECT_EQ(attempts, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  for (const double ms : sleeps) EXPECT_GT(ms, 0.0);

  // Overloaded: the shed response's retry_after_ms hint drives the sleep,
  // and after the budget the final overloaded response is returned (the
  // exit-code taxonomy stays 5, not a client-invented code).
  auto gate = std::make_shared<SweepGate>();
  service::ServiceOptions sopts;
  sopts.on_sweep_start = [gate](const WisdomKey& key) { gate->hook(key); };
  TuningService svc(sopts);
  const std::string path = temp_socket();
  service::ServerOptions opts;
  opts.max_inflight = 1;
  opts.retry_after_base_ms = 25.0;
  service::SocketServer server(svc, path, opts);
  server.start();

  gate->arm();
  std::thread leader([&] {
    const auto resp = service::tune_over_socket(path, small_key(1));
    EXPECT_TRUE(resp.ok) << resp.message;
  });
  gate->wait_entered();

  sleeps.clear();
  attempts = 0;
  const auto resp = service::request_with_retry(
      path, service::format_tune_request(small_key(2)), retry, &attempts);
  EXPECT_TRUE(resp.overloaded()) << resp.message;
  EXPECT_EQ(resp.err_code, 5);
  EXPECT_EQ(attempts, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  for (const double ms : sleeps) EXPECT_GT(ms, 0.0);

  gate->open();
  leader.join();
  server.stop();
}

// Satellite: SHUTDOWN/drain arriving *during* a deduped in-flight sweep
// must leave every waiter with a typed error or a result — never a hang,
// never a silent close.
TEST(ServiceHardening, DrainDuringDedupedSweepAnswersEveryWaiter) {
  auto gate = std::make_shared<SweepGate>();
  service::ServiceOptions sopts;
  sopts.on_sweep_start = [gate](const WisdomKey& key) { gate->hook(key); };
  TuningService svc(sopts);
  const std::string path = temp_socket();
  service::ServerOptions opts;
  opts.drain_deadline_ms = 150.0;
  service::SocketServer server(svc, path, opts);
  server.start();

  const WisdomKey key = small_key(4);
  std::mutex mu;
  std::vector<std::optional<service::ParsedResponse>> answers;
  const auto request = [&] {
    std::optional<service::ParsedResponse> got;
    try {
      got = service::tune_over_socket(path, key);
    } catch (const std::exception&) {
      got = std::nullopt;  // torn connection — the failure mode under test
    }
    std::lock_guard<std::mutex> lock(mu);
    answers.push_back(got);
  };

  gate->arm();
  std::thread leader(request);
  gate->wait_entered();
  std::thread joiner_a(request);
  std::thread joiner_b(request);
  // Both must actually be joined onto the held sweep before the drain.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (svc.counters().dedup_joins < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(svc.counters().dedup_joins, 2u);

  // A spectator connected *before* the drain: its post-drain sweep
  // request must be shed with the typed draining line.
  service::Client spectator(path);
  spectator.connect();

  std::thread drainer([&] { server.drain(); });
  while (!server.draining()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const auto spectated =
      service::parse_response(spectator.roundtrip("TUNE " + small_key(5).to_line()));
  ASSERT_TRUE(spectated.has_value());
  EXPECT_FALSE(spectated->ok);
  EXPECT_TRUE(spectated->draining()) << spectated->message;
  EXPECT_EQ(spectated->err_code, 5);

  gate->open();  // let the held sweep run (or get cancelled by the drain)
  drainer.join();
  leader.join();
  joiner_a.join();
  joiner_b.join();
  EXPECT_FALSE(server.running());

  ASSERT_EQ(answers.size(), 3u);
  const std::string oracle = oracle_payload(key);
  for (const auto& a : answers) {
    ASSERT_TRUE(a.has_value())
        << "every waiter must receive a response line, not a torn connection";
    if (a->ok) {
      EXPECT_EQ(a->entry_payload, oracle);
    } else {
      EXPECT_EQ(a->err_code, 5) << a->message;
    }
  }
}

TEST(ServicePeek, ServesHitsWithoutSweepingAndLeavesMissesUntouched) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  EXPECT_FALSE(svc.peek(req).has_value());
  EXPECT_EQ(svc.counters().requests, 0u) << "a peek miss leaves no counter trace";

  const TuneOutcome swept = svc.tune(req);
  const auto peeked = svc.peek(req);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->source, Source::CacheHit);
  EXPECT_EQ(peeked->entry_payload(), swept.entry_payload());
  const auto c = svc.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.sweeps, 1u) << "peek must never sweep";
}

// ------------------------------------------------- fan-out breaker --

TEST(ServiceBreaker, TripsShortCircuitsProbesAndRecovers) {
  const PathGuard guard(temp_name("breaker"));
  fs::create_directories(guard.path);

  std::atomic<bool> fleet_down{true};
  std::atomic<int> fleet_attempts{0};
  service::ServiceOptions opts;
  opts.fan_out_workers = 1;
  opts.fan_out_dir = guard.path;
  opts.fan_out_worker_exe = INPLANE_SUPERVISOR_BIN;
  opts.breaker_threshold = 2;
  opts.breaker_probe_after_ms = 1500.0;  // jittered open window: [750, 2250) ms
  opts.on_fan_out = [&](const WisdomKey&) {
    fleet_attempts.fetch_add(1);
    if (fleet_down.load()) throw InternalError("test: fleet down");
  };
  TuningService svc(opts);
  EXPECT_STREQ(svc.breaker_state(), "closed");

  // Failure 1: under the threshold — breaker stays closed, the sweep
  // falls back to the bit-identical local path.
  TuneRequest r0;
  r0.key = small_key(0);
  EXPECT_EQ(svc.tune(r0).entry_payload(), oracle_payload(small_key(0)));
  EXPECT_STREQ(svc.breaker_state(), "closed");
  EXPECT_EQ(svc.counters().breaker_failures, 1u);
  EXPECT_EQ(svc.counters().breaker_trips, 0u);

  // Failure 2: consecutive threshold reached — the breaker trips open.
  TuneRequest r1;
  r1.key = small_key(1);
  EXPECT_EQ(svc.tune(r1).entry_payload(), oracle_payload(small_key(1)));
  EXPECT_STREQ(svc.breaker_state(), "open");
  EXPECT_EQ(svc.counters().breaker_trips, 1u);

  // While open: sweeps short-circuit straight to the local path without
  // even touching the fleet.
  const int attempts_before = fleet_attempts.load();
  TuneRequest r2;
  r2.key = small_key(2);
  EXPECT_EQ(svc.tune(r2).entry_payload(), oracle_payload(small_key(2)));
  EXPECT_EQ(fleet_attempts.load(), attempts_before)
      << "an open breaker must not touch the fleet";
  EXPECT_GE(svc.counters().breaker_short_circuits, 1u);

  // Fleet recovers; past the jittered open window the next sweep runs as
  // the half-open probe, succeeds and closes the breaker.
  fleet_down.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(2400));
  WisdomKey probe_key;
  probe_key.method = "fullslice";
  probe_key.device = "gtx580";
  probe_key.order = 2;
  probe_key.extent = Extent3{64, 32, 12};
  probe_key.kind = "exhaustive";
  TuneRequest r3;
  r3.key = probe_key;
  EXPECT_EQ(svc.tune(r3).entry_payload(), oracle_payload(probe_key));
  EXPECT_STREQ(svc.breaker_state(), "closed");
  EXPECT_GE(svc.counters().breaker_probes, 1u);
}

TEST(ServiceBreaker, DisabledBreakerPropagatesFleetFailures) {
  const PathGuard guard(temp_name("nobreaker"));
  fs::create_directories(guard.path);
  service::ServiceOptions opts;
  opts.fan_out_workers = 1;
  opts.fan_out_dir = guard.path;
  opts.fan_out_worker_exe = INPLANE_SUPERVISOR_BIN;
  opts.fan_out_breaker = false;  // --no-fanout-breaker: pre-breaker behaviour
  opts.on_fan_out = [](const WisdomKey&) {
    throw InternalError("test: fleet down");
  };
  TuningService svc(opts);
  EXPECT_STREQ(svc.breaker_state(), "off");
  TuneRequest req;
  req.key = small_key(0);
  EXPECT_THROW({ (void)svc.tune(req); }, InternalError);
  EXPECT_EQ(svc.counters().breaker_trips, 0u);
}

}  // namespace
