// Concurrency/property harness for the tuning-as-a-service layer:
// cache-hit/no-sweep pinning, in-flight dedup determinism, a >= 32-thread
// mixed-traffic stress run whose answers are bit-identical to a direct
// single-process tune(), per-request QoS (deadline + memory budget),
// socket end-to-end protocol, distributed fan-out bit-identity, the
// fingerprint cross-implementation law, and the core/process.hpp
// ChildProcess edge cases the daemon's supervision depends on.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/fingerprint.hpp"
#include "core/process.hpp"
#include "core/status.hpp"
#include "distributed/sweep_spec.hpp"
#include "gpusim/device.hpp"
#include "kernels/resources.hpp"
#include "kernels/stencil_kernel.hpp"
#include "metrics/metrics.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace fs = std::filesystem;
using namespace inplane;
using service::Source;
using service::TuneOutcome;
using service::TuneRequest;
using service::TuningService;
using service::WisdomKey;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Tiny-grid model-guided keys: each sweep is a few ms, so real sweeps
/// are affordable inside the stress tests.
WisdomKey small_key(int i) {
  WisdomKey key;
  key.method = (i % 2 == 0) ? "fullslice" : "classical";
  key.device = "gtx580";
  key.order = 2 + 2 * (i % 2);
  key.extent = Extent3{64, 32, 8 + 4 * (i / 2)};
  key.kind = "model";
  key.beta = 0.05;
  return key;
}

std::string temp_name(const char* tag) {
  static std::atomic<int> n{0};
  return (fs::temp_directory_path() /
          ("svc_test_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           "_" + std::to_string(n.fetch_add(1))))
      .string();
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::remove(path + ".orphan", ec);
    fs::remove(path + ".tmp", ec);
  }
};

std::string oracle_payload(const WisdomKey& key) {
  return autotune::encode_tune_entry(service::direct_tune(key));
}

// ------------------------------------------------- fingerprint law --

TEST(FingerprintCrossImpl, EveryLayerDerivesTheSameProblemFingerprint) {
  const auto device = gpusim::DeviceSpec::geforce_gtx580();
  const Extent3 extent{128, 64, 16};

  // Layer 1: the raw primitive, fed the canonical vocabulary (the
  // kernels::to_string method name and the device's display name — NOT
  // the CLI aliases "fullslice"/"gtx580", which every layer resolves
  // before hashing).
  const std::uint64_t raw = autotune::problem_fingerprint(
      kernels::to_string(kernels::Method::InPlaneFullSlice), device.name,
      extent, sizeof(float), "exhaustive");

  // Layer 2: the shared CheckpointKey constructor (tuner journals).
  const autotune::CheckpointKey ck = autotune::make_checkpoint_key(
      kernels::Method::InPlaneFullSlice, device, extent, sizeof(float),
      "exhaustive");
  EXPECT_EQ(ck.fingerprint(), raw);

  // Layer 3: the distributed sweep spec (shard journals).
  distributed::SweepSpec spec;
  spec.method = "fullslice";
  spec.device = "gtx580";
  spec.extent = extent;
  spec.order = 4;
  spec.kind = "exhaustive";
  EXPECT_EQ(distributed::checkpoint_key(spec, extent).fingerprint(), raw);

  // Layer 4: the wisdom key chains the same primitive (widened by order,
  // device fingerprint and beta — so it must *differ*, deterministically).
  WisdomKey wk;
  wk.method = "fullslice";
  wk.device = "gtx580";
  wk.extent = extent;
  wk.order = 4;
  wk.kind = "exhaustive";
  EXPECT_NE(wk.fingerprint(), raw);
  EXPECT_EQ(wk.fingerprint(), wk.canonical().fingerprint());
}

TEST(FingerprintCrossImpl, DeviceFingerprintSeesNumericFieldsNotJustTheName) {
  auto a = gpusim::DeviceSpec::geforce_gtx580();
  auto b = a;
  EXPECT_EQ(autotune::device_fingerprint(a), autotune::device_fingerprint(b));
  b.achieved_bw_gbs += 1.0;
  EXPECT_NE(autotune::device_fingerprint(a), autotune::device_fingerprint(b));
  auto c = a;
  c.sm_count += 1;
  EXPECT_NE(autotune::device_fingerprint(a), autotune::device_fingerprint(c));
}

// ------------------------------------------------ ChildProcess edges --

TEST(ChildProcessEdge, SpawnOfNonexistentBinaryThrowsIoError) {
  EXPECT_THROW(
      (void)core::ChildProcess::spawn({"/nonexistent/inplane_no_such_binary"}),
      IoError);
}

TEST(ChildProcessEdge, SpawnOfEmptyArgvThrowsInvalidConfig) {
  EXPECT_THROW((void)core::ChildProcess::spawn({}), InvalidConfigError);
}

TEST(ChildProcessEdge, WaitOnDefaultConstructedThrows) {
  core::ChildProcess p;
  EXPECT_FALSE(p.valid());
  EXPECT_THROW((void)p.wait(), InternalError);
}

TEST(ChildProcessEdge, PollTerminateKillOnDefaultConstructedAreSafe) {
  core::ChildProcess p;
  EXPECT_EQ(p.poll(), std::nullopt);
  p.terminate();  // must be no-ops, not crashes
  p.kill_hard();
  EXPECT_EQ(p.poll(), std::nullopt);
}

TEST(ChildProcessEdge, DoubleWaitReturnsTheCachedStatus) {
  auto p = core::ChildProcess::spawn({"/bin/sh", "-c", "exit 7"});
  const core::ExitStatus first = p.wait();
  EXPECT_TRUE(first.exited);
  EXPECT_EQ(first.code, 7);
  // The second wait must not block, throw, or reap someone else's child.
  const core::ExitStatus second = p.wait();
  EXPECT_TRUE(second.exited);
  EXPECT_EQ(second.code, 7);
  const auto polled = p.poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->code, 7);
}

TEST(ChildProcessEdge, KillImmediatelyAfterSpawnReportsTheSignal) {
  // Signal delivered before the child gets anywhere: spawn must have
  // fully attached the pid by the time it returns, so the kill lands on
  // our child and wait() reports the signal (never a lost process).
  auto p = core::ChildProcess::spawn({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(p.valid());
  p.kill_hard();
  const core::ExitStatus status = p.wait();
  EXPECT_TRUE(status.signalled);
  EXPECT_EQ(status.signal, SIGKILL);
  EXPECT_FALSE(status.success());
}

TEST(ChildProcessEdge, TerminateAfterReapIsANoOp) {
  auto p = core::ChildProcess::spawn({"/bin/true"});
  (void)p.wait();
  p.terminate();  // child already reaped; the pid must not be re-signalled
  p.kill_hard();
  EXPECT_TRUE(p.poll().has_value());
}

// ----------------------------------------------------- service core --

TEST(Service, CacheHitServesRepeatTuneWithoutAnySweep) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);

  const TuneOutcome first = svc.tune(req);
  EXPECT_EQ(first.source, Source::Swept);
  const TuneOutcome second = svc.tune(req);
  EXPECT_EQ(second.source, Source::CacheHit);
  EXPECT_EQ(second.entry_payload(), first.entry_payload());

  // The pin: exactly one sweep for two requests.
  const service::ServiceCounters c = svc.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.sweeps, 1u);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.failures, 0u);
}

TEST(Service, AnswersAreBitIdenticalToDirectTune) {
  TuningService svc(service::ServiceOptions{});
  for (int i = 0; i < 3; ++i) {
    TuneRequest req;
    req.key = small_key(i);
    const TuneOutcome out = svc.tune(req);
    EXPECT_EQ(out.entry_payload(), oracle_payload(small_key(i))) << i;
  }
}

TEST(Service, NoCacheBypassesBothCacheAndDedup) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.no_cache = true;
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
  // Nothing was published: a normal request still has to sweep.
  req.no_cache = false;
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
  EXPECT_EQ(svc.counters().sweeps, 3u);
  // ... and that one *was* published.
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
}

TEST(Service, StampRejectsUnknownDeviceAndMethodLoudly) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.key.device = "vega";
  EXPECT_THROW((void)svc.tune(req), InvalidConfigError);
  req.key = small_key(0);
  req.key.method = "warp9";
  EXPECT_THROW((void)svc.tune(req), InvalidConfigError);
  EXPECT_EQ(svc.counters().failures, 2u);
}

TEST(Service, WisdomPersistsAcrossServiceRestarts) {
  const PathGuard guard(temp_name("wisdom"));
  std::string payload;
  {
    service::ServiceOptions opts;
    opts.wisdom_path = guard.path;
    TuningService svc(opts);
    TuneRequest req;
    req.key = small_key(1);
    payload = svc.tune(req).entry_payload();
  }
  service::ServiceOptions opts;
  opts.wisdom_path = guard.path;
  TuningService svc(opts);
  TuneRequest req;
  req.key = small_key(1);
  const TuneOutcome out = svc.tune(req);
  EXPECT_EQ(out.source, Source::CacheHit);
  EXPECT_EQ(out.entry_payload(), payload);
  EXPECT_EQ(svc.counters().sweeps, 0u);
}

// End-to-end temporal-degree key: a degree-2 request sweeps the widened
// {tb=1, tb=2} axis, caches under its own identity (no aliasing with the
// single-step key for the same problem), and never answers with a
// resource-violating degree.
TEST(Service, TemporalDegreeKeysSweepAndCacheSeparately) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);  // fullslice, order 2, nz = 8 > tb * r
  req.key.temporal_degree = 2;

  const TuneOutcome first = svc.tune(req);
  EXPECT_EQ(first.source, Source::Swept);
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
  // The answer's config carries a degree inside the requested axis, and
  // the kernel it names passes its own resource validation.
  EXPECT_GE(first.best.config.tb, 1);
  EXPECT_LE(first.best.config.tb, 2);
  const auto kernel = kernels::make_kernel<float>(
      kernels::Method::InPlaneFullSlice, StencilCoeffs::diffusion(1),
      first.best.config);
  EXPECT_FALSE(kernel->validate(gpusim::DeviceSpec::geforce_gtx580(),
                                req.key.extent)
                   .has_value());

  // The single-step key for the same problem is a distinct cache slot.
  TuneRequest single = req;
  single.key.temporal_degree = 1;
  EXPECT_EQ(svc.tune(single).source, Source::Swept);
  EXPECT_EQ(svc.counters().sweeps, 2u);

  // ... and it answers exactly what the pre-degree service answered.
  EXPECT_EQ(svc.tune(single).entry_payload(), oracle_payload(single.key));

  // Out-of-range degrees are loudly rejected, never swept.
  TuneRequest bad = req;
  bad.key.temporal_degree = 9;
  EXPECT_THROW((void)svc.tune(bad), InvalidConfigError);
}

TEST(ServiceQos, DeadlineFiresAsResourceExhaustedAndIsNotCached) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.deadline_ms = 1e-6;  // fires on the first poll
  EXPECT_THROW((void)svc.tune(req), ResourceExhaustedError);
  EXPECT_EQ(svc.counters().failures, 1u);
  // The failure was not cached: a sane retry sweeps and succeeds.
  req.deadline_ms = 0.0;
  EXPECT_EQ(svc.tune(req).source, Source::Swept);
}

TEST(ServiceQos, ExternalCancelTokenIsHonoured) {
  TuningService svc(service::ServiceOptions{});
  CancelToken cancel;
  cancel.cancel();
  TuneRequest req;
  req.key = small_key(0);
  req.cancel = &cancel;
  EXPECT_THROW((void)svc.tune(req), ResourceExhaustedError);
}

TEST(ServiceQos, BudgetDegradedSweepAnswersButIsNeverCached) {
  TuningService svc(service::ServiceOptions{});
  TuneRequest req;
  req.key = small_key(0);
  req.mem_budget_bytes = 1;  // denies every reservation; floor = 1 candidate
  const TuneOutcome degraded = svc.tune(req);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.best.timing.valid);

  // A full-fidelity request must re-sweep (the degraded answer was not
  // published) and match the oracle.
  req.mem_budget_bytes = 0;
  const TuneOutcome full = svc.tune(req);
  EXPECT_EQ(full.source, Source::Swept);
  EXPECT_FALSE(full.degraded);
  EXPECT_EQ(full.entry_payload(), oracle_payload(small_key(0)));
  EXPECT_EQ(svc.counters().sweeps, 2u);
}

TEST(ServiceMetrics, CountersAreMirroredIntoTheRegistry) {
  metrics::Registry::global().reset();
  metrics::set_enabled(true);
  {
    TuningService svc(service::ServiceOptions{});
    TuneRequest req;
    req.key = small_key(0);
    (void)svc.tune(req);
    (void)svc.tune(req);
  }
  metrics::set_enabled(false);
  double requests = -1.0, hits = -1.0, sweeps = -1.0;
  for (const auto& entry : metrics::Registry::global().snapshot()) {
    if (entry.name == "service.requests") requests = entry.value;
    if (entry.name == "service.cache_hits") hits = entry.value;
    if (entry.name == "service.sweeps") sweeps = entry.value;
  }
  EXPECT_EQ(requests, 2.0);
  EXPECT_EQ(hits, 1.0);
  EXPECT_EQ(sweeps, 1.0);
  metrics::Registry::global().reset();
}

// -------------------------------------------------- dedup determinism --

TEST(ServiceDedup, ConcurrentIdenticalRequestsShareExactlyOneSweep) {
  constexpr int kThreads = 8;

  // The leader blocks in the sweep-start hook until every other thread
  // has registered as a joiner — making "N identical concurrent requests,
  // one sweep" a deterministic fact rather than a race we hope for.
  std::atomic<TuningService*> svc_ptr{nullptr};
  service::ServiceOptions opts;
  opts.on_sweep_start = [&](const WisdomKey&) {
    TuningService* svc = nullptr;
    while ((svc = svc_ptr.load()) == nullptr) std::this_thread::yield();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (svc->counters().dedup_joins <
               static_cast<std::uint64_t>(kThreads - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  TuningService svc(opts);
  svc_ptr.store(&svc);

  std::mutex mu;
  std::vector<TuneOutcome> outcomes;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TuneRequest req;
      req.key = small_key(0);
      const TuneOutcome out = svc.tune(req);
      std::lock_guard<std::mutex> lock(mu);
      outcomes.push_back(out);
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kThreads));
  int swept = 0, joined = 0;
  for (const TuneOutcome& out : outcomes) {
    if (out.source == Source::Swept) ++swept;
    if (out.source == Source::Joined) ++joined;
    EXPECT_EQ(out.entry_payload(), outcomes.front().entry_payload());
  }
  EXPECT_EQ(swept, 1);
  EXPECT_EQ(joined, kThreads - 1);

  const service::ServiceCounters c = svc.counters();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(c.sweeps, 1u);
  EXPECT_EQ(c.dedup_joins, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(c.cache_hits, 0u);

  // Everyone after the melee hits the cache.
  TuneRequest req;
  req.key = small_key(0);
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
}

TEST(ServiceDedup, JoinerDeadlineDoesNotCancelTheLeader) {
  std::atomic<bool> leader_entered{false};
  std::atomic<bool> release_leader{false};
  service::ServiceOptions opts;
  opts.on_sweep_start = [&](const WisdomKey&) {
    leader_entered.store(true);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!release_leader.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  TuningService svc(opts);

  std::thread leader([&] {
    TuneRequest req;
    req.key = small_key(0);
    EXPECT_EQ(svc.tune(req).source, Source::Swept);
  });
  while (!leader_entered.load()) std::this_thread::yield();

  // A joiner with a tiny deadline gives up on the shared future without
  // touching the in-flight sweep.
  TuneRequest hurried;
  hurried.key = small_key(0);
  hurried.deadline_ms = 5.0;
  EXPECT_THROW((void)svc.tune(hurried), ResourceExhaustedError);

  release_leader.store(true);
  leader.join();
  EXPECT_EQ(svc.counters().sweeps, 1u);
  // The leader's answer landed in the cache despite the joiner bailing.
  TuneRequest req;
  req.key = small_key(0);
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
}

// ------------------------------------------------------ stress harness --

TEST(ServiceStress, ThirtyTwoThreadsMixedTrafficBitIdenticalToDirectTune) {
  constexpr int kThreads = 32;
  constexpr int kOpsPerThread = 6;
  constexpr int kKeys = 4;

  // Capacity below the key-pool size, persisted wisdom: evictions,
  // compactions and re-sweeps all happen under fire.
  const PathGuard guard(temp_name("stress"));
  service::ServiceOptions opts;
  opts.wisdom_path = guard.path;
  opts.cache_capacity = 3;
  TuningService svc(opts);

  // Single-process oracle per key, computed up front.
  std::map<int, std::string> oracle;
  for (int k = 0; k < kKeys; ++k) oracle[k] = oracle_payload(small_key(k));

  std::atomic<int> hits{0}, sweeps{0}, joins{0}, cancelled{0}, degraded{0};
  std::mutex mu;
  std::vector<std::string> mismatches;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 0x5eed0000 + static_cast<std::uint64_t>(t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int k = static_cast<int>(splitmix64(rng) % kKeys);
        TuneRequest req;
        req.key = small_key(k);
        const std::uint64_t roll = splitmix64(rng) % 12;
        if (roll == 0) req.no_cache = true;
        if (roll == 1) req.deadline_ms = 1e-6;  // doomed: QoS failure path
        if (roll == 2) req.mem_budget_bytes = 1;  // degraded path
        try {
          const TuneOutcome out = svc.tune(req);
          switch (out.source) {
            case Source::CacheHit: hits.fetch_add(1); break;
            case Source::Swept: sweeps.fetch_add(1); break;
            case Source::Joined: joins.fetch_add(1); break;
          }
          if (out.degraded) {
            degraded.fetch_add(1);
          } else if (out.entry_payload() != oracle[k]) {
            std::lock_guard<std::mutex> lock(mu);
            mismatches.push_back("key " + std::to_string(k) + " from thread " +
                                 std::to_string(t));
          }
        } catch (const ResourceExhaustedError&) {
          cancelled.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every non-degraded answer — hit, swept, or joined, cached before or
  // after an eviction — is bit-identical to the direct tune.
  EXPECT_TRUE(mismatches.empty()) << mismatches.size() << " mismatches, first: "
                                  << mismatches.front();

  const service::ServiceCounters c = svc.counters();
  const int answered = hits.load() + sweeps.load() + joins.load();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(answered + cancelled.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(c.failures, static_cast<std::uint64_t>(cancelled.load()));
  EXPECT_EQ(c.cache_hits, static_cast<std::uint64_t>(hits.load()));
  EXPECT_GE(c.dedup_joins, static_cast<std::uint64_t>(joins.load()));
  EXPECT_GT(c.sweeps, 0u);
  // The whole point of the service: far fewer sweeps than requests.
  EXPECT_LT(c.sweeps, c.requests);
  EXPECT_LE(svc.cache().size(), opts.cache_capacity);

  // The surviving wisdom reloads cleanly and stays bit-identical.
  service::ServiceOptions reopened;
  reopened.wisdom_path = guard.path;
  reopened.cache_capacity = 3;
  TuningService svc2(reopened);
  for (const WisdomKey& key : svc2.cache().lru_order()) {
    TuneRequest req;
    req.key = key;
    const TuneOutcome out = svc2.tune(req);
    EXPECT_EQ(out.source, Source::CacheHit);
    // Identify which pool key this is and compare against its oracle.
    for (int k = 0; k < kKeys; ++k) {
      if (svc2.stamp(small_key(k)) == key) {
        EXPECT_EQ(out.entry_payload(), oracle[k]);
      }
    }
  }
}

// ------------------------------------------------------ socket layer --

std::string temp_socket() {
  static std::atomic<int> n{0};
  return "/tmp/svc_sock_" + std::to_string(::getpid()) + "_" +
         std::to_string(n.fetch_add(1));
}

TEST(ServiceSocket, EndToEndProtocolOverAfUnix) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path);
  server.start();
  EXPECT_TRUE(server.running());

  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");

  const WisdomKey key = small_key(0);
  const auto first = service::parse_response(
      client.roundtrip("TUNE " + key.to_line()));
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok);
  EXPECT_EQ(first->source, "swept");
  EXPECT_EQ(first->entry_payload, oracle_payload(key));

  const auto second = service::parse_response(
      client.roundtrip("TUNE " + key.to_line()));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->source, "hit");
  EXPECT_EQ(second->entry_payload, first->entry_payload);

  const auto run = service::parse_response(
      client.roundtrip("RUN " + key.to_line()));
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->ok);
  EXPECT_EQ(run->source, "hit");
  EXPECT_GT(run->tx, 0);
  EXPECT_GT(run->mpoints, 0.0);

  // Malformed and doomed requests answer with taxonomy codes, in order.
  const auto bad = service::parse_response(client.roundtrip("TUNE nonsense"));
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->ok);
  EXPECT_EQ(bad->err_code, 2);
  const auto late = service::parse_response(
      client.roundtrip("TUNE " + small_key(1).to_line() + " deadline_ms=1e-6"));
  ASSERT_TRUE(late.has_value());
  EXPECT_FALSE(late->ok);
  EXPECT_EQ(late->err_code, 5);

  const std::string stats = client.roundtrip("STATS");
  EXPECT_EQ(stats.rfind("OK ", 0), 0u) << stats;
  EXPECT_NE(stats.find("cache_hits="), std::string::npos);

  server.stop();
}

TEST(ServiceSocket, ConcurrentClientsAgreeBitForBit) {
  constexpr int kClients = 8;
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path);
  server.start();

  std::mutex mu;
  std::vector<std::string> payloads;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      const auto resp = service::tune_over_socket(path, small_key(2));
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(resp.ok) << resp.message;
      payloads.push_back(resp.entry_payload);
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kClients));
  const std::string oracle = oracle_payload(small_key(2));
  for (const std::string& p : payloads) EXPECT_EQ(p, oracle);
  EXPECT_EQ(svc.counters().sweeps, 1u)
      << "concurrent socket clients must dedup onto one sweep";
  server.stop();
}

TEST(ServiceSocket, ShutdownRequestDrainsAndWaitReturns) {
  TuningService svc(service::ServiceOptions{});
  const std::string path = temp_socket();
  service::SocketServer server(svc, path);
  server.start();

  service::Client client(path);
  client.connect();
  EXPECT_EQ(client.roundtrip("SHUTDOWN"), "OK bye");
  server.wait();  // must return promptly once SHUTDOWN lands
  EXPECT_FALSE(server.running());
  EXPECT_TRUE(server.cancel_token().cancelled());
}

// -------------------------------------------------- distributed fan-out --

TEST(ServiceFanOut, CacheMissSweepAcrossWorkerFleetIsBitIdentical) {
  const PathGuard guard(temp_name("fanout"));
  fs::create_directories(guard.path);

  service::ServiceOptions opts;
  opts.fan_out_workers = 2;
  opts.fan_out_dir = guard.path;
  opts.fan_out_worker_exe = INPLANE_SUPERVISOR_BIN;
  TuningService svc(opts);

  WisdomKey key;
  key.method = "fullslice";
  key.device = "gtx580";
  key.order = 2;
  key.extent = Extent3{64, 32, 8};
  key.kind = "exhaustive";

  TuneRequest req;
  req.key = key;
  const TuneOutcome out = svc.tune(req);
  EXPECT_EQ(out.source, Source::Swept);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.entry_payload(), oracle_payload(key))
      << "fan-out sweep must be bit-identical to the single-process tune";

  // The fanned-out answer is cached like any other.
  EXPECT_EQ(svc.tune(req).source, Source::CacheHit);
  EXPECT_EQ(svc.counters().sweeps, 1u);
}

}  // namespace
