// Application-stencil correctness and structure (section V / Table V):
// every formula's simulated kernel — both loading methods — must agree with
// the generic CPU reference, and the formulas must expose the In/Out grid
// counts Table V reports.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_kernel.hpp"
#include "core/grid_compare.hpp"
#include "core/ulp_compare.hpp"

namespace inplane::apps {
namespace {

constexpr Extent3 kExtent{64, 32, 9};

template <typename T>
std::vector<Grid3<T>> make_inputs(const AppKernel<T>& kernel, std::uint64_t seed) {
  std::vector<Grid3<T>> grids = make_input_grids_for(kernel, kExtent);
  std::uint64_t salt = seed;
  for (auto& g : grids) {
    const double phase = 0.1 * static_cast<double>(salt++);
    g.fill_with_halo([&](int i, int j, int k) {
      return static_cast<T>(std::sin(0.07 * i + phase) + 0.03 * j - 0.01 * k +
                            0.002 * i * k);
    });
  }
  return grids;
}

template <typename T>
void expect_app_matches(const AppFormula& formula, AppMethod method,
                        kernels::LaunchConfig cfg) {
  AppKernel<T> kernel(formula, method, cfg);
  std::vector<Grid3<T>> inputs = make_inputs(kernel, 7);
  std::vector<Grid3<T>> outputs = make_output_grids_for(kernel, kExtent);
  for (auto& g : outputs) g.fill(static_cast<T>(-999));

  std::vector<const Grid3<T>*> in_ptrs;
  std::vector<Grid3<T>*> out_ptrs;
  for (auto& g : inputs) in_ptrs.push_back(&g);
  for (auto& g : outputs) out_ptrs.push_back(&g);
  run_app_kernel<T>(kernel, in_ptrs, out_ptrs, gpusim::DeviceSpec::geforce_gtx580(),
                    gpusim::ExecMode::Functional);

  // Gold: same logical values on plain (offset-0) grids.
  std::vector<Grid3<T>> gold_in;
  std::vector<Grid3<T>> gold_out;
  for (auto& g : inputs) {
    gold_in.emplace_back(kExtent, formula.radius());
    gold_in.back().fill_with_halo([&](int i, int j, int k) { return g.at(i, j, k); });
  }
  for (int o = 0; o < formula.n_outputs(); ++o) {
    gold_out.emplace_back(kExtent, formula.radius());
  }
  std::vector<const Grid3<T>*> gin;
  std::vector<Grid3<T>*> gout;
  for (auto& g : gold_in) gin.push_back(&g);
  for (auto& g : gold_out) gout.push_back(&g);
  apply_formula<T>(formula, gin, gout);

  // Application formulas chain several stencil sums per output; scale the
  // centralized per-radius budget to absorb the extra reassociation.
  const UlpBudget budget = UlpBudget::for_radius(formula.radius(), sizeof(T)).scaled(4.0);
  for (int o = 0; o < formula.n_outputs(); ++o) {
    const UlpGridDiff diff =
        ulp_compare_grids(outputs[static_cast<std::size_t>(o)],
                          gold_out[static_cast<std::size_t>(o)], budget);
    EXPECT_TRUE(diff.pass) << formula.name() << " [" << to_string(method)
                           << "] output " << o << ": " << diff.describe();
  }
}

struct AppCase {
  std::string app;
  AppMethod method;
  kernels::LaunchConfig cfg;
};

AppFormula formula_by_name(const std::string& name) {
  for (AppFormula& f : paper_apps()) {
    if (f.name() == name) return f;
  }
  throw std::runtime_error("unknown app " + name);
}

std::string app_case_name(const testing::TestParamInfo<AppCase>& info) {
  const AppCase& c = info.param;
  return c.app + (c.method == AppMethod::ForwardPlane ? "_fwd" : "_inp") + "_t" +
         std::to_string(c.cfg.tx) + "x" + std::to_string(c.cfg.ty) + "_r" +
         std::to_string(c.cfg.rx) + "x" + std::to_string(c.cfg.ry);
}

class AppVsReference : public testing::TestWithParam<AppCase> {};

TEST_P(AppVsReference, FloatMatches) {
  const AppCase& c = GetParam();
  expect_app_matches<float>(formula_by_name(c.app), c.method, c.cfg);
}

TEST_P(AppVsReference, DoubleMatches) {
  const AppCase& c = GetParam();
  kernels::LaunchConfig cfg = c.cfg;
  if (cfg.vec == 4) cfg.vec = 2;
  expect_app_matches<double>(formula_by_name(c.app), c.method, cfg);
}

std::vector<AppCase> app_cases() {
  std::vector<AppCase> cases;
  const std::vector<kernels::LaunchConfig> configs = {
      kernels::LaunchConfig{16, 4, 1, 1, 1},
      kernels::LaunchConfig{32, 4, 2, 2, 4},
      kernels::LaunchConfig{16, 2, 1, 4, 2},
  };
  for (const AppFormula& f : paper_apps()) {
    for (AppMethod m : {AppMethod::ForwardPlane, AppMethod::InPlaneFullSlice}) {
      for (const auto& cfg : configs) {
        cases.push_back({f.name(), m, cfg});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppVsReference, testing::ValuesIn(app_cases()),
                         app_case_name);

// --- Table V structure ------------------------------------------------------

TEST(TableV, GridCounts) {
  const auto apps = paper_apps();
  ASSERT_EQ(apps.size(), 6u);
  const int expect_in[] = {3, 1, 10, 1, 1, 2};
  const int expect_out[] = {1, 3, 1, 1, 1, 1};
  const char* names[] = {"Div", "Grad", "Hyperthermia", "Upstream", "Laplacian",
                         "Poisson"};
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(apps[i].name(), names[i]);
    EXPECT_EQ(apps[i].n_inputs(), expect_in[i]) << names[i];
    EXPECT_EQ(apps[i].n_outputs(), expect_out[i]) << names[i];
  }
}

TEST(FormulaAnalysis, DivergenceAccessPatterns) {
  const AppFormula f = divergence();
  EXPECT_EQ(f.radius(), 1);
  EXPECT_EQ(f.z_radius(), 1);
  EXPECT_EQ(f.queue_depth(), 1);
  EXPECT_EQ(f.xy_radius(0), 1);   // u: x neighbours
  EXPECT_EQ(f.xy_radius(1), 1);   // v: y neighbours
  EXPECT_EQ(f.xy_radius(2), 0);   // w: z-only, centre column
  EXPECT_EQ(f.back_depth(2), 1);  // w(k-1)
  EXPECT_TRUE(f.centre_read(2));
  EXPECT_FALSE(f.centre_read(0));
}

TEST(FormulaAnalysis, UpstreamIsOneSided) {
  const AppFormula f = upstream();
  EXPECT_EQ(f.queue_depth(), 0);  // no forward z terms: no output delay
  EXPECT_EQ(f.back_depth(0), 1);
  EXPECT_EQ(f.radius(), 1);
}

TEST(FormulaAnalysis, HyperthermiaCoefficientLoad) {
  const AppFormula f = hyperthermia();
  // 10 distinct input grids referenced; most of the traffic is centre-only
  // coefficient reads, which is why Fig. 11 shows almost no speedup.
  EXPECT_EQ(f.n_inputs(), 10);
  EXPECT_GE(f.memory_refs_per_point(), 14);
  int staged = 0;
  for (int g = 0; g < f.n_inputs(); ++g) {
    if (f.xy_radius(g) > 0) ++staged;
  }
  EXPECT_EQ(staged, 1);  // only the temperature grid needs halo staging
}

TEST(FormulaValidation, RejectsOffCentreZTerms) {
  EXPECT_THROW(AppFormula("bad", 1, 1, {{0, 0, 1, 0, 1, 1.0, -1}}),
               std::invalid_argument);
}

TEST(FormulaValidation, RejectsCoeffOnForwardTerms) {
  EXPECT_THROW(AppFormula("bad", 2, 1, {{0, 0, 0, 0, 1, 1.0, 1}}),
               std::invalid_argument);
}

TEST(FormulaValidation, RejectsBadIndices) {
  EXPECT_THROW(AppFormula("bad", 1, 1, {{0, 3, 0, 0, 0, 1.0, -1}}),
               std::invalid_argument);
  EXPECT_THROW(AppFormula("bad", 1, 1, {{2, 0, 0, 0, 0, 1.0, -1}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace inplane::apps
