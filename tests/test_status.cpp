// The error taxonomy: every typed error carries a Status, derives the
// standard exception type its call sites historically threw, and round
// trips through status_of()/raise().

#include <gtest/gtest.h>

#include <stdexcept>
#include <type_traits>

#include "core/status.hpp"

namespace inplane {
namespace {

// Each typed error must keep deriving the std exception its untyped
// predecessor threw, so pre-taxonomy catch sites keep working.
static_assert(std::is_base_of_v<std::invalid_argument, InvalidConfigError>);
static_assert(std::is_base_of_v<std::runtime_error, TransientFaultError>);
static_assert(std::is_base_of_v<std::runtime_error, TimeoutError>);
static_assert(std::is_base_of_v<std::runtime_error, DataCorruptionError>);
static_assert(std::is_base_of_v<std::runtime_error, DeviceLostError>);
static_assert(std::is_base_of_v<std::runtime_error, IoError>);
static_assert(std::is_base_of_v<std::out_of_range, WildAccessError>);
static_assert(std::is_base_of_v<std::logic_error, ReadOnlyViolationError>);

TEST(Status, CodesRenderAndClassify) {
  EXPECT_STREQ(to_string(ErrorCode::Ok), "ok");
  EXPECT_TRUE(Status::okay().ok());
  EXPECT_FALSE(Status(ErrorCode::Timeout, "x").ok());

  EXPECT_TRUE(Status(ErrorCode::TransientFault, "").retryable());
  EXPECT_TRUE(Status(ErrorCode::DataCorruption, "").retryable());
  EXPECT_FALSE(Status(ErrorCode::InvalidConfig, "").retryable());
  EXPECT_FALSE(Status(ErrorCode::Timeout, "").retryable());
  EXPECT_FALSE(Status(ErrorCode::DeviceLost, "").retryable());
  EXPECT_FALSE(Status(ErrorCode::IoError, "").retryable());

  const Status st(ErrorCode::TransientFault, "load failed");
  EXPECT_NE(st.to_string().find("transient"), std::string::npos);
  EXPECT_NE(st.to_string().find("load failed"), std::string::npos);
}

TEST(Status, StatusOfRecoversTypedErrors) {
  try {
    throw TimeoutError("watchdog fired");
  } catch (const std::exception& e) {
    const Status st = status_of(e);
    EXPECT_EQ(st.code, ErrorCode::Timeout);
    EXPECT_EQ(st.context, "watchdog fired");
  }
  try {
    throw InvalidConfigError("bad tile");
  } catch (const std::exception& e) {
    EXPECT_EQ(status_of(e).code, ErrorCode::InvalidConfig);
  }
  // A catch site expecting the legacy base type still works.
  EXPECT_THROW(throw InvalidConfigError("x"), std::invalid_argument);
  EXPECT_THROW(throw WildAccessError("x"), std::out_of_range);
  EXPECT_THROW(throw ReadOnlyViolationError("x"), std::logic_error);
  EXPECT_THROW(throw IoError("x"), std::runtime_error);
}

TEST(Status, StatusOfWrapsForeignExceptionsAsInternal) {
  try {
    throw std::logic_error("not one of ours");
  } catch (const std::exception& e) {
    const Status st = status_of(e);
    EXPECT_EQ(st.code, ErrorCode::Internal);
    EXPECT_EQ(st.context, "not one of ours");
  }
}

TEST(Status, RaiseRoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::InvalidConfig, ErrorCode::TransientFault, ErrorCode::Timeout,
        ErrorCode::DataCorruption, ErrorCode::DeviceLost, ErrorCode::IoError,
        ErrorCode::Internal}) {
    try {
      raise(Status(code, "ctx"));
      FAIL() << "raise returned";
    } catch (const std::exception& e) {
      EXPECT_EQ(status_of(e).code, code) << to_string(code);
    }
  }
}

TEST(Status, IoErrorCarriesByteOffset) {
  const IoError plain("no offset");
  EXPECT_EQ(plain.byte_offset(), -1);
  const IoError at("short read", 1234);
  EXPECT_EQ(at.byte_offset(), 1234);
  EXPECT_NE(std::string(at.what()).find("1234"), std::string::npos);
  EXPECT_EQ(at.status().code, ErrorCode::IoError);
}

TEST(Status, WhatComposesCodeAndContext) {
  const TransientFaultError e("lane 3 dropped");
  const std::string what = e.what();
  EXPECT_NE(what.find("transient"), std::string::npos);
  EXPECT_NE(what.find("lane 3 dropped"), std::string::npos);
}

TEST(Result, HoldsValueOrStatus) {
  const Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);

  const Result<int> bad(Status{ErrorCode::IoError, "gone"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code, ErrorCode::IoError);
  EXPECT_EQ(bad.value_or(-1), -1);
}

}  // namespace
}  // namespace inplane
