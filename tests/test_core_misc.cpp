// Core units: coefficients, Table I/II analytics, the CPU reference
// kernels, the Fig. 1 iteration driver, and grid comparison.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/coefficients.hpp"
#include "core/grid_compare.hpp"
#include "core/ulp_compare.hpp"
#include "core/iteration.hpp"
#include "core/reference.hpp"
#include "core/stencil_spec.hpp"

namespace inplane {
namespace {

// --- Coefficients -------------------------------------------------------------

TEST(Coefficients, DiffusionIsNormalised) {
  for (int r : {1, 2, 4, 6}) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(r);
    EXPECT_EQ(cs.radius(), r);
    EXPECT_EQ(cs.order(), 2 * r);
    double sum = cs.c0();
    for (int m = 1; m <= r; ++m) sum += 6.0 * cs.c(m);
    EXPECT_TRUE(ulp_close(sum, 1.0, UlpBudget::for_radius(r, sizeof(double))))
        << "radius " << r << " sum " << sum;
  }
}

TEST(Coefficients, DiffusionWeightsDecay) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(4);
  for (int m = 2; m <= 4; ++m) EXPECT_LT(cs.c(m), cs.c(m - 1));
}

TEST(Coefficients, RandomIsDeterministicPerSeed) {
  const StencilCoeffs a = StencilCoeffs::random(3, 7);
  const StencilCoeffs b = StencilCoeffs::random(3, 7);
  const StencilCoeffs c = StencilCoeffs::random(3, 8);
  EXPECT_EQ(a.c0(), b.c0());
  EXPECT_EQ(a.c(2), b.c(2));
  EXPECT_NE(a.c0(), c.c0());
}

TEST(Coefficients, NegativeRadiusRejected) {
  EXPECT_THROW(StencilCoeffs::diffusion(-1), std::invalid_argument);
  EXPECT_THROW(StencilCoeffs::random(-2, 1), std::invalid_argument);
}

// --- Table I / II analytics ----------------------------------------------------

TEST(StencilSpec, TableOneRows) {
  const int orders[] = {2, 4, 6, 8, 10, 12};
  const int refs[] = {8, 14, 20, 26, 32, 38};
  const int flops[] = {8, 15, 22, 29, 36, 43};
  const char* extents[] = {"3x3x3", "5x5x5", "7x7x7", "9x9x9", "11x11x11", "13x13x13"};
  for (int i = 0; i < 6; ++i) {
    const StencilSpec spec{orders[i]};
    EXPECT_EQ(spec.memory_refs(), refs[i]);
    EXPECT_EQ(spec.flops_forward(), flops[i]);
    EXPECT_EQ(spec.extent_string(), extents[i]);
  }
}

TEST(StencilSpec, TableTwoInPlaneFlops) {
  const int orders[] = {2, 4, 6, 8, 10, 12};
  const int flops[] = {9, 17, 25, 33, 41, 49};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(StencilSpec{orders[i]}.flops_inplane(), flops[i]);
  }
}

TEST(StencilSpec, CornerElements) {
  EXPECT_EQ(StencilSpec{2}.fullslice_corner_elems(), 4);
  EXPECT_EQ(StencilSpec{8}.fullslice_corner_elems(), 64);
  EXPECT_EQ(StencilSpec{12}.fullslice_corner_elems(), 144);
}

TEST(StencilSpec, PaperOrders) {
  EXPECT_EQ(paper_stencil_orders(), (std::vector<int>{2, 4, 6, 8, 10, 12}));
}

// --- CPU reference ---------------------------------------------------------------

TEST(Reference, ConstantFieldIsFixedPointOfNormalisedStencil) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  Grid3<double> in({16, 16, 8}, 2);
  in.fill(3.0);
  Grid3<double> out({16, 16, 8}, 2);
  apply_reference(in, out, cs);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(
            ulp_close(out.at(i, j, k), 3.0, UlpBudget::for_radius(2, sizeof(double))))
            << out.at(i, j, k);
      }
}

TEST(Reference, LinearFieldIsPreserved) {
  // A symmetric stencil with normalised weights reproduces affine fields
  // exactly: neighbours at +-m cancel.
  const StencilCoeffs cs = StencilCoeffs::diffusion(3);
  Grid3<double> in({16, 12, 10}, 3);
  in.fill_with_halo([](int i, int j, int k) { return 2.0 * i - j + 0.5 * k + 4.0; });
  Grid3<double> out({16, 12, 10}, 3);
  apply_reference(in, out, cs);
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(ulp_close(out.at(i, j, k), 2.0 * i - j + 0.5 * k + 4.0,
                              UlpBudget::for_radius(3, sizeof(double))))
            << out.at(i, j, k);
      }
}

TEST(Reference, SinglePointSpreadsExactlyTheStencil) {
  const StencilCoeffs cs = StencilCoeffs::random(2, 11);
  Grid3<double> in({11, 11, 11}, 2);
  in.fill(0.0);
  in.at(5, 5, 5) = 1.0;
  Grid3<double> out({11, 11, 11}, 2);
  apply_reference(in, out, cs);
  // The sums degenerate to single products: exact up to the default few ULPs.
  const UlpBudget tight{};
  EXPECT_TRUE(ulp_close(out.at(5, 5, 5), cs.c0(), tight));
  EXPECT_TRUE(ulp_close(out.at(3, 5, 5), cs.c(2), tight));
  EXPECT_TRUE(ulp_close(out.at(5, 6, 5), cs.c(1), tight));
  EXPECT_TRUE(ulp_close(out.at(5, 5, 7), cs.c(2), tight));
  EXPECT_TRUE(ulp_close(out.at(4, 6, 5), 0.0, UlpBudget::exact()));  // star: no diagonals
}

TEST(Reference, BlockedMatchesNaive) {
  const StencilCoeffs cs = StencilCoeffs::random(3, 5);
  const Grid3<double> in = Grid3<double>::random({20, 14, 9}, 3, 99);
  Grid3<double> a({20, 14, 9}, 3);
  Grid3<double> b({20, 14, 9}, 3);
  apply_reference(in, a, cs);
  for (int by : {1, 4, 7}) {
    for (int bz : {2, 16}) {
      apply_reference_blocked(in, b, cs, by, bz);
      EXPECT_EQ(compare_grids(a, b).max_abs, 0.0) << by << "x" << bz;
    }
  }
}

TEST(Reference, RejectsBadInputs) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  Grid3<float> small({8, 8, 8}, 1);  // halo < radius
  Grid3<float> out({8, 8, 8}, 2);
  EXPECT_THROW(apply_reference(small, out, cs), std::invalid_argument);
  Grid3<float> mismatched({10, 8, 8}, 2);
  EXPECT_THROW(apply_reference(mismatched, out, cs), std::invalid_argument);
  Grid3<float> in({8, 8, 8}, 2);
  EXPECT_THROW(apply_reference_blocked(in, out, cs, 0, 4), std::invalid_argument);
}

// --- Iteration driver (Fig. 1) ----------------------------------------------------

TEST(Iteration, RunsRequestedSteps) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  Grid3<double> a = Grid3<double>::random({8, 8, 8}, 1, 3);
  Grid3<double> b({8, 8, 8}, 1);
  const auto outcome = run_reference_loop(a, b, cs, StopCriteria{5, -1.0});
  EXPECT_EQ(outcome.stats.steps_taken, 5);
  EXPECT_FALSE(outcome.stats.converged);
  ASSERT_NE(outcome.result, nullptr);
}

TEST(Iteration, SwapSemanticsMatchManualPingPong) {
  const StencilCoeffs cs = StencilCoeffs::random(1, 21);
  Grid3<double> a = Grid3<double>::random({10, 10, 6}, 1, 4);
  Grid3<double> b({10, 10, 6}, 1);
  Grid3<double> x(a);
  Grid3<double> y({10, 10, 6}, 1);
  const auto outcome = run_reference_loop(a, b, cs, StopCriteria{3, -1.0});
  apply_reference(x, y, cs);   // step 1
  apply_reference(y, x, cs);   // step 2
  apply_reference(x, y, cs);   // step 3
  EXPECT_EQ(compare_grids(*outcome.result, y).max_abs, 0.0);
}

TEST(Iteration, ConvergesOnConstantField) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  Grid3<double> a({8, 8, 8}, 2);
  a.fill(1.0);
  Grid3<double> b({8, 8, 8}, 2);
  b.fill(1.0);
  const auto outcome = run_reference_loop(a, b, cs, StopCriteria{100, 1e-12});
  EXPECT_TRUE(outcome.stats.converged);
  EXPECT_EQ(outcome.stats.steps_taken, 1);
}

TEST(Iteration, DiffusionDecaysTowardsMean) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  Grid3<double> a({12, 12, 12}, 1);
  a.fill(0.0);
  a.at(6, 6, 6) = 100.0;
  Grid3<double> b({12, 12, 12}, 1);
  const auto outcome = run_reference_loop(a, b, cs, StopCriteria{20, -1.0});
  EXPECT_LT(outcome.result->at(6, 6, 6), 100.0);
  EXPECT_GT(outcome.result->at(5, 6, 6), 0.0);
}

TEST(Iteration, NullKernelRejected) {
  Grid3<float> a({4, 4, 4}, 1), b({4, 4, 4}, 1);
  EXPECT_THROW(run_iterative_stencil<float>(a, b, nullptr, StopCriteria{1, -1.0}),
               std::invalid_argument);
}

// --- Grid comparison ----------------------------------------------------------------

TEST(GridCompare, FindsWorstPoint) {
  Grid3<float> a({8, 8, 8}, 0);
  Grid3<float> b({8, 8, 8}, 0);
  b.at(3, 4, 5) = 2.0f;
  const GridDiff diff = compare_grids(a, b);
  EXPECT_EQ(diff.max_abs, 2.0);
  EXPECT_EQ(diff.worst_i, 3);
  EXPECT_EQ(diff.worst_j, 4);
  EXPECT_EQ(diff.worst_k, 5);
}

TEST(GridCompare, AllCloseTolerances) {
  Grid3<double> a({4, 4, 4}, 0);
  Grid3<double> b({4, 4, 4}, 0);
  a.fill(1000.0);
  b.fill(1000.1);
  EXPECT_FALSE(grids_allclose(a, b, 1e-3, 1e-6));
  EXPECT_TRUE(grids_allclose(a, b, 0.2, 1e-6));
  EXPECT_TRUE(grids_allclose(a, b, 1e-9, 1e-3));  // relative passes
}

TEST(GridCompare, ExtentMismatchThrows) {
  Grid3<float> a({4, 4, 4}, 0);
  Grid3<float> b({4, 4, 5}, 0);
  EXPECT_THROW((void)compare_grids(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace inplane
