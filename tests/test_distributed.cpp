// The crash-tolerant distributed sweep engine: partitioning laws, the
// heartbeat protocol, the process shim, worker fault plans, journal
// merge/dedup, and end-to-end supervision — kill/hang/corrupt-tail
// failover, permanent-death resharding, supervisor kill + --resume —
// each checked for bit-identity with the single-process sweep.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/tuner.hpp"
#include "core/process.hpp"
#include "core/status.hpp"
#include "distributed/heartbeat.hpp"
#include "distributed/partition.hpp"
#include "distributed/supervisor.hpp"
#include "distributed/sweep_spec.hpp"
#include "distributed/worker_faults.hpp"
#include "metrics/metrics.hpp"
#include "multigpu/multi_gpu.hpp"

namespace inplane {
namespace {

namespace fs = std::filesystem;
using namespace inplane::distributed;

std::string temp_dir(const std::string& name) {
  const std::string path = (fs::temp_directory_path() / name).string();
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

// ------------------------------------------------------------- partitioning --

TEST(Partition, ModeNamesRoundTrip) {
  EXPECT_EQ(partition_mode_from("candidates"), PartitionMode::Candidates);
  EXPECT_EQ(partition_mode_from("slabs"), PartitionMode::Slabs);
  EXPECT_STREQ(to_string(PartitionMode::Slabs), "slabs");
  EXPECT_THROW((void)partition_mode_from("rings"), InvalidConfigError);
}

TEST(Partition, RoundRobinCoversEverythingNearEvenly) {
  const auto shards = partition_round_robin(17, 4);
  ASSERT_EQ(shards.size(), 4u);
  std::set<std::size_t> seen;
  std::size_t lo = 17, hi = 0;
  for (std::size_t w = 0; w < shards.size(); ++w) {
    lo = std::min(lo, shards[w].size());
    hi = std::max(hi, shards[w].size());
    for (std::size_t item : shards[w]) {
      EXPECT_EQ(item % 4, w);  // item i lands on shard i % workers
      seen.insert(item);
    }
  }
  EXPECT_EQ(seen.size(), 17u);  // disjoint cover of [0, n)
  EXPECT_LE(hi - lo, 1u);       // near-equal piles
  EXPECT_THROW((void)partition_round_robin(4, 0), InvalidConfigError);
}

TEST(Partition, SlabExtentEnforcesDivisibilityAndDepth) {
  const Extent3 full{128, 64, 16};
  const Extent3 slab = slab_extent(full, 4, 2);
  EXPECT_EQ(slab.nx, 128);
  EXPECT_EQ(slab.ny, 64);
  EXPECT_EQ(slab.nz, 4);
  EXPECT_THROW((void)slab_extent(full, 3, 2), InvalidConfigError);   // 16 % 3
  EXPECT_THROW((void)slab_extent(full, 16, 2), InvalidConfigError);  // 1 < r
}

// ---------------------------------------------------------------- heartbeat --

TEST(Heartbeat, RoundTripsAndToleratesGarbage) {
  const std::string dir = temp_dir("ipd_heartbeat");
  const std::string path = dir + "/w.hb";
  EXPECT_FALSE(read_heartbeat(path).has_value());  // absent

  write_heartbeat(path, Heartbeat{42, 17});
  const auto hb = read_heartbeat(path);
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->seq, 42u);
  EXPECT_EQ(hb->done, 17u);

  std::ofstream(path, std::ios::trunc) << "NOTAHEARTBEAT 1 2\n";
  EXPECT_FALSE(read_heartbeat(path).has_value());  // wrong tag
}

// ------------------------------------------------------------- process shim --

TEST(ChildProcess, SpawnWaitExitCodesAndSignals) {
  auto ok = core::ChildProcess::spawn({"/bin/sh", "-c", "exit 0"});
  EXPECT_TRUE(ok.wait().success());

  auto fail = core::ChildProcess::spawn({"/bin/sh", "-c", "exit 7"});
  const core::ExitStatus st = fail.wait();
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.code, 7);
  EXPECT_FALSE(st.success());

  auto sleeper = core::ChildProcess::spawn({"/bin/sh", "-c", "sleep 30"});
  EXPECT_FALSE(sleeper.poll().has_value());  // still running
  sleeper.kill_hard();
  const core::ExitStatus killed = sleeper.wait();
  EXPECT_TRUE(killed.signalled);
  EXPECT_EQ(killed.signal, 9);

  EXPECT_THROW((void)core::ChildProcess::spawn({"/nonexistent/bin/nope"}),
               IoError);
  EXPECT_THROW((void)core::ChildProcess::spawn({}), InvalidConfigError);
}

// -------------------------------------------------------- worker fault plans --

TEST(WorkerFaultPlan, ParsesEveryClauseKind) {
  const WorkerFaultPlan plan = WorkerFaultPlan::parse(
      "kill@2:w0; hang@3; corrupt@1:w1:g2; slow=5.5:g*");
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].kind, WorkerFaultKind::Kill);
  EXPECT_EQ(plan.rules[0].at, 2);
  EXPECT_EQ(plan.rules[0].worker, 0);
  EXPECT_EQ(plan.rules[0].generation, 0);  // default: first spawn only
  EXPECT_EQ(plan.rules[1].kind, WorkerFaultKind::Hang);
  EXPECT_EQ(plan.rules[1].worker, -1);  // any slot
  EXPECT_EQ(plan.rules[2].kind, WorkerFaultKind::CorruptTail);
  EXPECT_EQ(plan.rules[2].generation, 2);
  EXPECT_EQ(plan.rules[3].kind, WorkerFaultKind::Slow);
  EXPECT_DOUBLE_EQ(plan.rules[3].slow_ms, 5.5);
  EXPECT_EQ(plan.rules[3].generation, -1);  // every spawn

  EXPECT_TRUE(WorkerFaultPlan::parse("  ").empty());
  EXPECT_THROW((void)WorkerFaultPlan::parse("explode@1"), InvalidConfigError);
  EXPECT_THROW((void)WorkerFaultPlan::parse("kill@0"), InvalidConfigError);
  EXPECT_THROW((void)WorkerFaultPlan::parse("kill@2:x9"), InvalidConfigError);
  EXPECT_THROW((void)WorkerFaultPlan::parse("slow=-3"), InvalidConfigError);
}

TEST(WorkerFaultPlan, ToStringParsesBack) {
  const std::string spec = "kill@2:w0; hang@3; corrupt@1:w1:g2; slow=5.5:g*";
  const WorkerFaultPlan plan = WorkerFaultPlan::parse(spec);
  const WorkerFaultPlan again = WorkerFaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.rules.size(), plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(again.rules[i].kind, plan.rules[i].kind);
    EXPECT_EQ(again.rules[i].worker, plan.rules[i].worker);
    EXPECT_EQ(again.rules[i].generation, plan.rules[i].generation);
    EXPECT_EQ(again.rules[i].at, plan.rules[i].at);
    EXPECT_DOUBLE_EQ(again.rules[i].slow_ms, plan.rules[i].slow_ms);
  }
}

TEST(WorkerFaultPlan, FiltersBySlotAndGeneration) {
  const WorkerFaultPlan plan =
      WorkerFaultPlan::parse("kill@1:w0; kill@2:w1:g*; slow=3");
  EXPECT_EQ(plan.for_worker(0, 0).size(), 2u);  // kill:w0:g0 + slow:g0
  EXPECT_EQ(plan.for_worker(0, 1).size(), 0u);  // respawn outlives g0 rules
  EXPECT_EQ(plan.for_worker(1, 5).size(), 1u);  // kill:g* fires every spawn
}

// ------------------------------------------------------------ journal merge --

autotune::CheckpointKey small_key() {
  autotune::CheckpointKey key;
  key.method = "full-slice";
  key.device = "GeForce GTX580";
  key.extent = {64, 32, 8};
  key.elem_size = 4;
  key.kind = "exhaustive";
  return key;
}

autotune::TuneEntry entry_for(int tx, double mpoints) {
  autotune::TuneEntry e;
  e.config = {tx, 2, 1, 1, 1};
  e.executed = true;
  e.timing.valid = true;
  e.timing.mpoints_per_s = mpoints;
  e.timing.seconds = 1.0 / mpoints;
  return e;
}

TEST(MergeJournals, DeduplicatesAcrossShardsFirstRecordWins) {
  const std::string dir = temp_dir("ipd_merge");
  const autotune::CheckpointKey key = small_key();
  {
    autotune::CheckpointJournal a;
    a.open(dir + "/worker_0.iptj", key);
    a.append(entry_for(16, 100.0));
    a.append(entry_for(32, 200.0));
  }
  {
    autotune::CheckpointJournal b;
    b.open(dir + "/worker_1.iptj", key);
    b.append(entry_for(32, 200.0));  // re-measured during failover
    b.append(entry_for(64, 300.0));
  }
  autotune::MergeStats stats;
  const std::vector<autotune::TuneEntry> merged = autotune::merge_journals(
      {dir + "/worker_0.iptj", dir + "/worker_1.iptj", dir + "/missing.iptj"},
      key, &stats);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.missing_files, 1u);
}

TEST(MergeJournals, SkipsForeignFingerprintsAndToleratesTornTails) {
  const std::string dir = temp_dir("ipd_merge_torn");
  const autotune::CheckpointKey key = small_key();
  autotune::CheckpointKey other = key;
  other.kind = "model";
  {
    autotune::CheckpointJournal a;
    a.open(dir + "/worker_0.iptj", key);
    a.append(entry_for(16, 100.0));
  }
  {
    autotune::CheckpointJournal b;
    b.open(dir + "/worker_1.iptj", other);  // wrong sweep entirely
    b.append(entry_for(32, 200.0));
  }
  {
    // Torn tail: a length/CRC frame whose payload never made it to disk.
    std::FILE* f = std::fopen((dir + "/worker_0.iptj").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t len = 4096, crc = 0;
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite(&crc, sizeof(crc), 1, f);
    std::fclose(f);
  }
  autotune::MergeStats stats;
  const auto merged = autotune::merge_journals(
      {dir + "/worker_0.iptj", dir + "/worker_1.iptj"}, key, &stats);
  EXPECT_EQ(merged.size(), 1u);  // foreign journal contributes nothing
  EXPECT_EQ(stats.mismatched_files, 1u);
  EXPECT_EQ(stats.torn_tails, 1u);
  EXPECT_EQ(merged[0].config.tx, 16);
}

// ----------------------------------------------------- inter-node cost term --

TEST(InternodeExchange, ZeroForSingleNodePositiveAndBandwidthSensitive) {
  const Extent3 full{128, 64, 16};
  multigpu::MultiGpuOptions opts;
  EXPECT_EQ(multigpu::internode_exchange_seconds(full, 2, 4, 1, opts), 0.0);
  const double slow = multigpu::internode_exchange_seconds(full, 2, 4, 4, opts);
  EXPECT_GT(slow, 0.0);
  opts.internode_bw_gbs = 100.0;  // faster interconnect, cheaper halo
  const double fast = multigpu::internode_exchange_seconds(full, 2, 4, 4, opts);
  EXPECT_LT(fast, slow);
  opts.internode_latency_us = 5000.0;
  const double laggy = multigpu::internode_exchange_seconds(full, 2, 4, 4, opts);
  EXPECT_GT(laggy, fast);
}

// ------------------------------------------------------- end-to-end sweeps --

SweepSpec test_spec() {
  SweepSpec spec;
  spec.method = "fullslice";
  spec.device = "gtx580";
  spec.extent = {128, 64, 16};
  spec.order = 4;
  spec.kind = "exhaustive";
  return spec;
}

SupervisorOptions base_options(const std::string& dir) {
  SupervisorOptions opts;
  opts.spec = test_spec();
  opts.workers = 2;
  opts.checkpoint_dir = dir;
  opts.worker_exe = INPLANE_SUPERVISOR_BIN;
  opts.backoff_initial_ms = 5.0;
  opts.poll_interval_ms = 5.0;
  return opts;
}

autotune::TuneResult single_process_reference() {
  const SweepSpec spec = test_spec();
  return autotune::exhaustive_tune<float>(
      resolve_method(spec.method), StencilCoeffs::diffusion(spec.radius()),
      resolve_device(spec.device), spec.extent);
}

/// Bit-identical best: same config and the measured timing doubles match
/// to the last bit (the simulator is deterministic; merge must not
/// perturb anything).
void expect_same_best(const autotune::TuneResult& got,
                      const autotune::TuneResult& want) {
  ASSERT_TRUE(got.found());
  ASSERT_TRUE(want.found());
  EXPECT_EQ(got.best.config, want.best.config);
  EXPECT_EQ(std::memcmp(&got.best.timing.seconds, &want.best.timing.seconds,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&got.best.timing.mpoints_per_s,
                        &want.best.timing.mpoints_per_s, sizeof(double)),
            0);
}

TEST(DistributedSweep, MatchesSingleProcessBitForBit) {
  const std::string dir = temp_dir("ipd_e2e_clean");
  const SweepReport report = run_distributed_sweep(base_options(dir));
  const autotune::TuneResult ref = single_process_reference();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.workers_lost, 0u);
  EXPECT_EQ(report.result.executed, ref.executed);
  EXPECT_EQ(report.result.candidates, ref.candidates);
  expect_same_best(report.result, ref);
}

TEST(DistributedSweep, KilledWorkerFailsOverAndBestIsUnchanged) {
  const std::string dir = temp_dir("ipd_e2e_kill");
  SupervisorOptions opts = base_options(dir);
  opts.worker_fault_spec = "kill@1:w0";  // first spawn of slot 0 dies early
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.workers_lost, 1u);
  EXPECT_GE(report.workers_spawned, 3u);  // the respawn
  EXPECT_FALSE(report.per_worker[0].dead);
  expect_same_best(report.result, single_process_reference());
}

TEST(DistributedSweep, PermanentDeathReshardsOntoSurvivors) {
  const std::string dir = temp_dir("ipd_e2e_reshard");
  SupervisorOptions opts = base_options(dir);
  opts.worker_fault_spec = "kill@1:w0:g*";  // every spawn of slot 0 dies
  opts.retry_budget = 1;
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.per_worker[0].dead);
  EXPECT_GT(report.candidates_resharded, 0u);
  expect_same_best(report.result, single_process_reference());
}

TEST(DistributedSweep, CorruptJournalTailIsDroppedOnRespawn) {
  const std::string dir = temp_dir("ipd_e2e_corrupt");
  SupervisorOptions opts = base_options(dir);
  opts.worker_fault_spec = "corrupt@2:w1";
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.workers_lost, 1u);
  // The two pre-crash records survive the torn tail and are not re-measured.
  EXPECT_GE(report.per_worker[1].measured, 2u);
  expect_same_best(report.result, single_process_reference());
}

TEST(DistributedSweep, HungWorkerIsDetectedKilledAndReplaced) {
  const std::string dir = temp_dir("ipd_e2e_hang");
  SupervisorOptions opts = base_options(dir);
  opts.worker_fault_spec = "hang@1:w0";
  opts.heartbeat_deadline_ms = 300.0;
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.workers_lost, 1u);
  expect_same_best(report.result, single_process_reference());
}

TEST(DistributedSweep, SlowWorkerIsNotMistakenForHung) {
  const std::string dir = temp_dir("ipd_e2e_slow");
  SupervisorOptions opts = base_options(dir);
  // Per-candidate delay well under the deadline: heartbeats keep
  // advancing, so no kill — even though the whole shard takes far longer
  // than heartbeat_deadline_ms in total.
  opts.worker_fault_spec = "slow=2:g*";
  opts.heartbeat_deadline_ms = 2000.0;
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.workers_lost, 0u);
  expect_same_best(report.result, single_process_reference());
}

TEST(DistributedSweep, SupervisorDeadlineKillsWorkersAndRaises) {
  const std::string dir = temp_dir("ipd_e2e_deadline");
  SupervisorOptions opts = base_options(dir);
  opts.worker_fault_spec = "slow=50:g*";  // make the sweep outlast the budget
  CancelToken cancel;
  cancel.set_deadline_ms(200.0);
  opts.cancel = &cancel;
  EXPECT_THROW((void)run_distributed_sweep(opts), ResourceExhaustedError);
  // The journals must be merge-clean for a later --resume.
  autotune::MergeStats stats;
  (void)autotune::merge_journals(
      {journal_path(dir, 0), journal_path(dir, 1)},
      checkpoint_key(opts.spec, opts.spec.extent), &stats);
  EXPECT_EQ(stats.mismatched_files, 0u);
}

TEST(DistributedSweep, ResumesAfterSupervisorIsKilled) {
  const std::string dir = temp_dir("ipd_e2e_sup_kill");
  // Run the real supervisor binary, slowed enough to be killed mid-sweep.
  auto sup = core::ChildProcess::spawn(
      {INPLANE_SUPERVISOR_BIN, "--workers", "2", "--checkpoint-dir", dir,
       "--method", "fullslice", "--order", "4", "--device", "gtx580", "--nx",
       "128", "--ny", "64", "--nz", "16", "--worker-fault-plan", "slow=15:g*"});
  // Wait until some measurements are journaled, then SIGKILL the supervisor.
  const auto t0 = std::chrono::steady_clock::now();
  const autotune::CheckpointKey key =
      checkpoint_key(test_spec(), test_spec().extent);
  for (;;) {
    std::size_t measured = 0;
    for (int slot = 0; slot < 2; ++slot) {
      measured +=
          autotune::read_journal(journal_path(dir, slot), key).entries.size();
    }
    if (measured >= 4) break;
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(60))
        << "workers never journaled any measurements";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  sup.kill_hard();
  EXPECT_TRUE(sup.wait().signalled);
  // The orphaned workers keep measuring their shard files; let them
  // drain (they exit on their own) so the resume below owns the journals.
  std::uintmax_t last_size = 0;
  for (int stable = 0; stable < 10;) {
    std::uintmax_t size = 0;
    std::error_code ec;
    for (int slot = 0; slot < 2; ++slot) {
      size += fs::exists(journal_path(dir, slot))
                  ? fs::file_size(journal_path(dir, slot), ec)
                  : 0;
    }
    stable = size == last_size ? stable + 1 : 0;
    last_size = size;
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::minutes(3));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  SupervisorOptions opts = base_options(dir);
  opts.resume = true;  // adopt the dead supervisor's journals
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.resumed_entries, 4u);
  expect_same_best(report.result, single_process_reference());
}

TEST(DistributedSweep, SlabModeComposesInternodeExchange) {
  const std::string dir = temp_dir("ipd_e2e_slabs");
  SupervisorOptions opts = base_options(dir);
  opts.mode = PartitionMode::Slabs;
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  ASSERT_TRUE(report.result.found());
  // The composed full-grid time charges the inter-node halo exchange on
  // top of the slab time, so slab throughput must trail the ideal
  // single-node sweep of the same grid.
  const autotune::TuneResult ref = single_process_reference();
  EXPECT_LT(report.result.best.timing.mpoints_per_s,
            ref.best.timing.mpoints_per_s);
  multigpu::MultiGpuOptions mg;
  const double exchange = multigpu::internode_exchange_seconds(
      opts.spec.extent, opts.spec.radius(), opts.spec.elem_size(), opts.workers,
      mg);
  EXPECT_GT(report.result.best.timing.seconds, exchange);
}

TEST(DistributedSweep, ModelGuidedSweepMatchesSingleProcess) {
  const std::string dir = temp_dir("ipd_e2e_model");
  SupervisorOptions opts = base_options(dir);
  opts.spec.kind = "model";
  opts.spec.beta = 0.25;
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);
  const SweepSpec spec = opts.spec;
  const autotune::TuneResult ref = autotune::model_guided_tune<float>(
      resolve_method(spec.method), StencilCoeffs::diffusion(spec.radius()),
      resolve_device(spec.device), spec.extent, spec.beta);
  EXPECT_EQ(report.result.executed, ref.executed);
  expect_same_best(report.result, ref);
}

TEST(DistributedSweep, BumpsSupervisionMetrics) {
  const std::string dir = temp_dir("ipd_e2e_metrics");
  metrics::set_enabled(true);
  auto& reg = metrics::Registry::global();
  const auto value_of = [&](const std::string& name) {
    for (const metrics::SnapshotEntry& e : reg.snapshot()) {
      if (e.name == name) return e.value;
    }
    return 0.0;
  };
  const double spawned0 = value_of("distributed.workers_spawned");
  const double lost0 = value_of("distributed.workers_lost");

  SupervisorOptions opts = base_options(dir);
  opts.worker_fault_spec = "kill@1:w0";
  const SweepReport report = run_distributed_sweep(opts);
  EXPECT_TRUE(report.complete);

  EXPECT_GE(value_of("distributed.workers_spawned") - spawned0, 3.0);
  EXPECT_GE(value_of("distributed.workers_lost") - lost0, 1.0);
  metrics::set_enabled(false);
}

}  // namespace
}  // namespace inplane
