// Occupancy (Eqn. (7)) and the timing model: limits, limiter attribution,
// the staging equations (6), (8), (9), and monotonicity properties the
// auto-tuner relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/occupancy.hpp"
#include "gpusim/timing.hpp"
#include "kernels/runner.hpp"

namespace inplane::gpusim {
namespace {

const DeviceSpec kFermi = DeviceSpec::geforce_gtx580();

TEST(Occupancy, RegisterLimited) {
  // 32 regs x 1024 threads = the whole register file: exactly one block.
  const Occupancy occ = Occupancy::compute(kFermi, {32, 1024, 1024});
  EXPECT_EQ(occ.active_blocks, 1);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::Registers);
}

TEST(Occupancy, SharedMemoryLimited) {
  const Occupancy occ = Occupancy::compute(kFermi, {8, 20 * 1024, 64});
  EXPECT_EQ(occ.active_blocks, 2);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::SharedMem);
}

TEST(Occupancy, WarpLimited) {
  // 512 threads = 16 warps; 48 warps max -> 3 blocks.
  const Occupancy occ = Occupancy::compute(kFermi, {10, 64, 512});
  EXPECT_EQ(occ.active_blocks, 3);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::Warps);
}

TEST(Occupancy, BlockLimited) {
  const Occupancy occ = Occupancy::compute(kFermi, {8, 16, 32});
  EXPECT_EQ(occ.active_blocks, kFermi.max_blocks_per_sm);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::Blocks);
}

TEST(Occupancy, InvalidConfigurations) {
  EXPECT_EQ(Occupancy::compute(kFermi, {8, 16, 2048}).active_blocks, 0);   // threads
  EXPECT_EQ(Occupancy::compute(kFermi, {80, 16, 64}).active_blocks, 0);    // regs/thread
  EXPECT_EQ(Occupancy::compute(kFermi, {8, 64 * 1024, 64}).active_blocks, 0);  // smem
  EXPECT_EQ(Occupancy::compute(kFermi, {8, 16, 0}).active_blocks, 0);      // no threads
}

TEST(Occupancy, ActiveWarps) {
  const Occupancy occ = Occupancy::compute(kFermi, {16, 1024, 96});
  EXPECT_EQ(occ.warps_per_block, 3);
  EXPECT_EQ(occ.active_warps(), occ.active_blocks * 3);
}

TEST(Occupancy, KeplerHasMoreRoom) {
  const DeviceSpec kepler = DeviceSpec::geforce_gtx680();
  const KernelResources res{32, 2048, 256};
  EXPECT_GT(Occupancy::compute(kepler, res).active_blocks,
            Occupancy::compute(kFermi, res).active_blocks);
}

// --- Timing model -------------------------------------------------------------

TimingInput base_input() {
  TimingInput in;
  in.grid = {512, 512, 256};
  in.radius = 1;
  in.tile_w = 64;
  in.tile_h = 16;
  in.resources = {24, 4096, 256};
  in.per_plane.load_instrs = 40;
  in.per_plane.store_instrs = 32;
  in.per_plane.bytes_requested_ld = 18000;
  in.per_plane.bytes_transferred_ld = 20000;
  in.per_plane.bytes_requested_st = 4096;
  in.per_plane.bytes_transferred_st = 4096;
  in.per_plane.smem_instrs = 200;
  in.per_plane.compute_instrs = 224;
  in.per_plane.flops = 9 * 1024;
  in.per_plane.syncs = 2;
  in.ilp = 1;
  return in;
}

TEST(TimingModel, ValidAndPositive) {
  const KernelTiming t = estimate_timing(kFermi, base_input());
  ASSERT_TRUE(t.valid);
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_GT(t.mpoints_per_s, 0.0);
  EXPECT_GT(t.gflops, 0.0);
}

// Regression: an all-zero per-plane trace made busy + latency + sync == 0
// and bw_utilisation came back as NaN (0/0).
TEST(TimingModel, AllZeroTraceHasDefinedUtilisation) {
  TimingInput in = base_input();
  in.per_plane = TraceStats{};
  in.ilp = 1000;  // saturate latency hiding so c_lat is 0 too
  const KernelTiming t = estimate_timing(kFermi, in);
  EXPECT_FALSE(std::isnan(t.bw_utilisation));
  EXPECT_EQ(t.bw_utilisation, 0.0);
}

TEST(TimingModel, MoreBytesNeverFaster) {
  TimingInput in = base_input();
  const double base = estimate_timing(kFermi, in).seconds;
  in.per_plane.bytes_transferred_ld *= 2;
  EXPECT_GE(estimate_timing(kFermi, in).seconds, base);
}

TEST(TimingModel, MoreInstructionsNeverFaster) {
  TimingInput in = base_input();
  const double base = estimate_timing(kFermi, in).seconds;
  in.per_plane.smem_instrs += 5000;
  EXPECT_GE(estimate_timing(kFermi, in).seconds, base);
}

TEST(TimingModel, DoublePrecisionComputeIsSlower) {
  TimingInput in = base_input();
  in.per_plane.compute_instrs = 100000;  // force compute-bound
  const double sp = estimate_timing(kFermi, in).seconds;
  in.is_double = true;
  const double dp = estimate_timing(kFermi, in).seconds;
  EXPECT_GT(dp, sp);
  EXPECT_NEAR(dp / sp, 1.0 / kFermi.dp_throughput_ratio, 0.5);
}

TEST(TimingModel, InvalidTileRejected) {
  TimingInput in = base_input();
  in.tile_w = 60;  // does not divide 512
  const KernelTiming t = estimate_timing(kFermi, in);
  EXPECT_FALSE(t.valid);
  EXPECT_FALSE(t.invalid_reason.empty());
}

TEST(TimingModel, ZeroOccupancyRejected) {
  TimingInput in = base_input();
  in.resources.regs_per_thread = 200;
  EXPECT_FALSE(estimate_timing(kFermi, in).valid);
}

TEST(TimingModel, StagingMathMatchesEquations) {
  TimingInput in = base_input();
  const KernelTiming t = estimate_timing(kFermi, in);
  ASSERT_TRUE(t.valid);
  // Eqn. (6): 512/64 * 512/16 = 256 blocks per plane.
  const long blks = 256;
  const int act = t.occupancy.active_blocks;
  const long per_round = static_cast<long>(act) * kFermi.sm_count;
  EXPECT_EQ(t.stages, static_cast<int>((blks + per_round - 1) / per_round));
  EXPECT_GE(t.rem_blocks, 1);
  EXPECT_LE(t.rem_blocks, act);
}

TEST(TimingModel, LowOccupancyExposesLatency) {
  TimingInput in = base_input();
  in.resources.regs_per_thread = 63;   // crush occupancy
  in.resources.threads = 32;           // one warp per block
  in.tile_w = 32;
  in.tile_h = 1;
  const KernelTiming t = estimate_timing(kFermi, in);
  ASSERT_TRUE(t.valid);
  EXPECT_GT(t.per_plane_sm.latency, 0.0);
}

TEST(TimingModel, RegisterTilingIlpHidesLatency) {
  TimingInput in = base_input();
  in.resources.threads = 32;
  in.tile_w = 32;
  in.tile_h = 1;
  in.resources.regs_per_thread = 63;
  const double no_ilp = estimate_timing(kFermi, in).per_plane_sm.latency;
  in.ilp = 4;
  const double with_ilp = estimate_timing(kFermi, in).per_plane_sm.latency;
  EXPECT_LT(with_ilp, no_ilp);
}

TEST(TimingModel, BandwidthBoundPerfTracksAchievedBandwidth) {
  // A perfectly coalesced, memory-only kernel should land close to the
  // achieved-bandwidth roofline.
  TimingInput in = base_input();
  in.tile_w = 64;
  in.tile_h = 16;
  const double elems = 64.0 * 16.0;
  in.per_plane = {};
  in.per_plane.load_instrs = 32;
  in.per_plane.bytes_requested_ld = static_cast<std::uint64_t>(elems * 4);
  in.per_plane.bytes_transferred_ld = in.per_plane.bytes_requested_ld;
  in.per_plane.bytes_requested_st = in.per_plane.bytes_requested_ld;
  in.per_plane.bytes_transferred_st = in.per_plane.bytes_requested_ld;
  in.per_plane.store_instrs = 32;
  in.resources = {20, 2048, 256};
  const KernelTiming t = estimate_timing(kFermi, in);
  ASSERT_TRUE(t.valid);
  const double roofline_mpts =
      kFermi.achieved_bw_gbs * 1e9 / 8.0 / 1e6;  // 8 bytes per point
  EXPECT_NEAR(t.mpoints_per_s, roofline_mpts, roofline_mpts * 0.15);
}

}  // namespace
}  // namespace inplane::gpusim
