// Extension modules: the stochastic tuner, the extra application stencils
// (wave, seismic RTM), binary grid I/O, and the multi-GPU decomposition.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "apps/app_kernel.hpp"
#include "autotune/stochastic.hpp"
#include "core/grid_compare.hpp"
#include "core/ulp_compare.hpp"
#include "core/grid_io.hpp"
#include "core/reference.hpp"
#include "multigpu/multi_gpu.hpp"

namespace inplane {
namespace {

using kernels::LaunchConfig;
using kernels::Method;

// --- Stochastic tuner ---------------------------------------------------------

TEST(StochasticTune, FindsNearOptimalWithSmallBudget) {
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  for (int order : {2, 8}) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const autotune::TuneResult exh =
        autotune::exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, grid);
    autotune::StochasticOptions opt;
    opt.max_evaluations = 40;
    opt.restarts = 4;
    const autotune::TuneResult sto = autotune::stochastic_tune<float>(
        Method::InPlaneFullSlice, cs, dev, grid, opt);
    ASSERT_TRUE(sto.found());
    EXPECT_LE(sto.executed, 40u);
    EXPECT_LT(sto.executed, exh.executed);
    EXPECT_GE(sto.best.timing.mpoints_per_s, exh.best.timing.mpoints_per_s * 0.9)
        << "order " << order;
  }
}

TEST(StochasticTune, DeterministicPerSeed) {
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  autotune::StochasticOptions opt;
  opt.seed = 99;
  const auto a = autotune::stochastic_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                                  grid, opt);
  const auto b = autotune::stochastic_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                                  grid, opt);
  EXPECT_EQ(a.best.config, b.best.config);
  EXPECT_EQ(a.executed, b.executed);
}

TEST(StochasticTune, RespectsBudget) {
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::geforce_gtx680();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  autotune::StochasticOptions opt;
  opt.max_evaluations = 5;
  opt.restarts = 10;
  const auto t = autotune::stochastic_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                                  grid, opt);
  EXPECT_LE(t.executed, 5u);
}

// --- Extra application stencils ---------------------------------------------------

template <typename T>
void expect_extra_app_matches(const apps::AppFormula& formula) {
  const Extent3 extent{64, 32, 12};
  const apps::AppKernel<T> kernel(formula, apps::AppMethod::InPlaneFullSlice,
                                  LaunchConfig{16, 4, 2, 2, 2});
  std::vector<Grid3<T>> inputs = apps::make_input_grids_for(kernel, extent);
  std::uint64_t salt = 3;
  for (auto& g : inputs) {
    const double phase = 0.13 * static_cast<double>(salt++);
    g.fill_with_halo([&](int i, int j, int k) {
      return static_cast<T>(1.0 + 0.5 * std::sin(0.09 * i + phase) + 0.02 * j -
                            0.01 * k);
    });
  }
  std::vector<Grid3<T>> outputs = apps::make_output_grids_for(kernel, extent);
  std::vector<const Grid3<T>*> in_ptrs;
  std::vector<Grid3<T>*> out_ptrs;
  for (auto& g : inputs) in_ptrs.push_back(&g);
  for (auto& g : outputs) out_ptrs.push_back(&g);
  apps::run_app_kernel<T>(kernel, in_ptrs, out_ptrs,
                          gpusim::DeviceSpec::geforce_gtx580());

  std::vector<Grid3<T>> gold_in;
  for (auto& g : inputs) {
    gold_in.emplace_back(extent, formula.radius());
    gold_in.back().fill_with_halo([&](int i, int j, int k) { return g.at(i, j, k); });
  }
  std::vector<Grid3<T>> gold_out;
  for (int o = 0; o < formula.n_outputs(); ++o) gold_out.emplace_back(extent, formula.radius());
  std::vector<const Grid3<T>*> gin;
  std::vector<Grid3<T>*> gout;
  for (auto& g : gold_in) gin.push_back(&g);
  for (auto& g : gold_out) gout.push_back(&g);
  apps::apply_formula<T>(formula, gin, gout);
  const UlpGridDiff diff =
      ulp_compare_grids(outputs[0], gold_out[0],
                        UlpBudget::for_radius(formula.radius(), sizeof(T)).scaled(4.0));
  EXPECT_TRUE(diff.pass) << formula.name() << ": " << diff.describe();
}

TEST(ExtraApps, WaveMatchesReference) {
  expect_extra_app_matches<double>(apps::wave());
  expect_extra_app_matches<float>(apps::wave());
}

TEST(ExtraApps, SeismicRtmMatchesReference) {
  expect_extra_app_matches<double>(apps::seismic_rtm());
}

TEST(ExtraApps, Structure) {
  const apps::AppFormula w = apps::wave();
  EXPECT_EQ(w.n_inputs(), 2);
  EXPECT_EQ(w.radius(), 1);
  const apps::AppFormula s = apps::seismic_rtm();
  EXPECT_EQ(s.n_inputs(), 3);
  EXPECT_EQ(s.radius(), 4);
  EXPECT_EQ(s.queue_depth(), 4);
  EXPECT_TRUE(s.centre_read(2));  // the velocity grid
}

// --- Grid I/O -----------------------------------------------------------------------

TEST(GridIo, RoundTripsBitExactly) {
  Grid3<double> g = Grid3<double>::random({20, 12, 8}, 3, 7);
  g.at(-3, -3, -3) = 42.0;  // halo content must survive too
  save_grid(g, "test_io_tmp/grid.ipg");
  const Grid3<double> back = load_grid<double>("test_io_tmp/grid.ipg");
  EXPECT_EQ(back.extent(), g.extent());
  EXPECT_EQ(back.halo(), g.halo());
  EXPECT_EQ(back.at(-3, -3, -3), 42.0);
  EXPECT_EQ(compare_grids(g, back).max_abs, 0.0);
  std::filesystem::remove_all("test_io_tmp");
}

TEST(GridIo, PreservesLayoutParameters) {
  Grid3<float> g({16, 8, 4}, 2, 64, 2);
  g.fill_interior([](int i, int, int) { return float(i); });
  save_grid(g, "test_io_tmp/layout.ipg");
  const Grid3<float> back = load_grid<float>("test_io_tmp/layout.ipg");
  EXPECT_EQ(back.alignment(), 64u);
  EXPECT_EQ(back.align_offset(), 2);
  EXPECT_EQ(back.pitch_x(), g.pitch_x());
  std::filesystem::remove_all("test_io_tmp");
}

TEST(GridIo, RejectsWrongTypeAndGarbage) {
  Grid3<float> g({4, 4, 4}, 1);
  save_grid(g, "test_io_tmp/f.ipg");
  EXPECT_THROW((void)load_grid<double>("test_io_tmp/f.ipg"), std::runtime_error);
  EXPECT_THROW((void)load_grid<float>("test_io_tmp/missing.ipg"), std::runtime_error);
  std::filesystem::remove_all("test_io_tmp");
}

TEST(GridIo, CsvExport) {
  Grid3<float> g({3, 2, 2}, 0);
  g.fill_interior([](int i, int j, int k) { return float(i + 10 * j + 100 * k); });
  export_plane_csv(g, 1, "test_io_tmp/plane.csv");
  std::ifstream in("test_io_tmp/plane.csv");
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "100,101,102");
  std::getline(in, line);
  EXPECT_EQ(line, "110,111,112");
  EXPECT_THROW(export_plane_csv(g, 5, "x.csv"), std::invalid_argument);
  std::filesystem::remove_all("test_io_tmp");
}

// --- Multi-GPU decomposition ----------------------------------------------------------

TEST(MultiGpu, MultiStepMatchesReference) {
  const Extent3 extent{32, 16, 12};
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  for (int n : {1, 2, 3}) {
    multigpu::MultiGpuOptions opt;
    opt.n_devices = n;
    const multigpu::MultiGpuStencil<double> mg(Method::InPlaneFullSlice, cs,
                                               LaunchConfig{16, 4, 1, 1, 2}, opt);
    Grid3<double> a(extent, 1, 32, 1);
    a.fill_with_halo([](int i, int j, int k) {
      return std::sin(0.2 * i) + 0.1 * j - 0.05 * k;
    });
    Grid3<double> b(extent, 1, 32, 1);
    b.fill_with_halo([&](int i, int j, int k) { return a.at(i, j, k); });
    mg.run(a, b, gpusim::DeviceSpec::geforce_gtx580(), 3);

    // Gold: three whole-grid reference sweeps (frozen halo) from the same
    // initial condition.
    Grid3<double> init(extent, 1);
    init.fill_with_halo([](int i, int j, int k) {
      return std::sin(0.2 * i) + 0.1 * j - 0.05 * k;
    });
    Grid3<double> y(extent, 1);
    y.fill_with_halo([&](int i, int j, int k) { return init.at(i, j, k); });
    apply_reference(init, y, cs);
    Grid3<double> z(extent, 1);
    z.fill_with_halo([&](int i, int j, int k) { return init.at(i, j, k); });
    apply_reference(y, z, cs);
    apply_reference(z, y, cs);
    const UlpGridDiff diff = ulp_compare_grids(
        a, y, UlpBudget::for_radius(1, sizeof(double)).scaled(3.0));
    EXPECT_TRUE(diff.pass) << n << " devices: " << diff.describe();
  }
}

TEST(MultiGpu, ValidationErrors) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  multigpu::MultiGpuOptions opt;
  opt.n_devices = 3;
  const multigpu::MultiGpuStencil<float> mg(Method::InPlaneFullSlice, cs,
                                            LaunchConfig{16, 4, 1, 1, 4}, opt);
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  EXPECT_TRUE(mg.validate(dev, {32, 16, 16}).has_value());   // 16 % 3 != 0
  EXPECT_TRUE(mg.validate(dev, {32, 16, 3}).has_value());    // slabs too thin
  EXPECT_FALSE(mg.validate(dev, {32, 16, 12}).has_value());
  EXPECT_THROW(multigpu::MultiGpuStencil<float>(Method::InPlaneFullSlice, cs,
                                                LaunchConfig{16, 4, 1, 1, 4},
                                                multigpu::MultiGpuOptions{0}),
               std::invalid_argument);
}

TEST(MultiGpu, ScalingTiming) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  double prev_mpts = 0.0;
  for (int n : {1, 2, 4}) {
    multigpu::MultiGpuOptions opt;
    opt.n_devices = n;
    const multigpu::MultiGpuStencil<float> mg(Method::InPlaneFullSlice, cs,
                                              LaunchConfig{64, 8, 1, 2, 4}, opt);
    const auto t = mg.estimate(dev, grid);
    ASSERT_TRUE(t.valid) << t.invalid_reason;
    EXPECT_GT(t.mpoints_per_s, prev_mpts) << n;  // more devices, more throughput
    EXPECT_LE(t.parallel_efficiency, 1.05) << n;
    if (n > 1) {
      EXPECT_GT(t.exchange_seconds, 0.0);
      EXPECT_GT(t.parallel_efficiency, 0.5) << n;  // slabs still deep enough
    }
    prev_mpts = t.mpoints_per_s;
  }
}

TEST(MultiGpu, ExchangeGrowsWithRadiusAndSerialisesWithoutOverlap) {
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  multigpu::MultiGpuOptions opt;
  opt.n_devices = 2;
  const auto exchange = [&](int r, bool overlap) {
    multigpu::MultiGpuOptions o = opt;
    o.overlap_exchange = overlap;
    const multigpu::MultiGpuStencil<float> mg(Method::InPlaneFullSlice,
                                              StencilCoeffs::diffusion(r),
                                              LaunchConfig{64, 8, 1, 1, 4}, o);
    return mg.estimate(dev, grid);
  };
  EXPECT_GT(exchange(4, true).exchange_seconds, exchange(1, true).exchange_seconds);
  EXPECT_GT(exchange(2, false).total_seconds, exchange(2, true).total_seconds);
}

}  // namespace
}  // namespace inplane
