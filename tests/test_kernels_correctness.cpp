// Correctness of every simulated kernel variant against the CPU reference —
// the verification step of section IV-B ("The output of each kernel is
// verified to be consistent with the result from the CPU-computed stencil
// output"), run as a parameterised sweep over methods, stencil orders,
// launch configurations, and precisions.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/grid_compare.hpp"
#include "core/reference.hpp"
#include "core/ulp_compare.hpp"
#include "kernels/runner.hpp"

namespace inplane::kernels {
namespace {

using gpusim::DeviceSpec;
using gpusim::ExecMode;

constexpr Extent3 kExtent{64, 32, 9};

template <typename T>
Grid3<T> make_input(const IStencilKernel<T>& kernel) {
  Grid3<T> in = make_grid_for(kernel, kExtent);
  // Fill interior AND halo with a smooth deterministic field so that halo
  // handling errors (x, y, and the z pipeline fill/drain) change the
  // answer.
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.1 * i) + 0.05 * j + 0.02 * k * k -
                          0.001 * i * j);
  });
  return in;
}

template <typename T>
void expect_matches_reference(Method method, int order, LaunchConfig cfg) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  auto kernel = make_kernel<T>(method, cs, cfg);
  const Grid3<T> in = make_input(*kernel);
  Grid3<T> out = make_grid_for(*kernel, kExtent);
  out.fill(static_cast<T>(-999));  // poison: unwritten interior points show up

  run_kernel(*kernel, in, out, DeviceSpec::geforce_gtx580(), ExecMode::Functional);

  Grid3<T> gold(kExtent, cs.radius());
  gold.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<T> gold_out(kExtent, cs.radius());
  apply_reference(gold, gold_out, cs);

  // Centralized per-order ULP budget: the in-plane accumulation reorders
  // sums, and rounding error grows with the 6r+1 term count.
  const UlpGridDiff diff =
      ulp_compare_grids(out, gold_out, UlpBudget::for_order(order, sizeof(T)));
  EXPECT_TRUE(diff.pass) << to_string(method) << " order " << order << " cfg "
                         << cfg.to_string() << ": " << diff.describe();
}

struct Case {
  Method method;
  int order;
  LaunchConfig cfg;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string method = to_string(c.method);
  for (char& ch : method) {
    if (ch == '-') ch = '_';
  }
  return method + "_o" + std::to_string(c.order) + "_t" +
         std::to_string(c.cfg.tx) + "x" + std::to_string(c.cfg.ty) + "_r" +
         std::to_string(c.cfg.rx) + "x" + std::to_string(c.cfg.ry) + "_v" +
         std::to_string(c.cfg.vec);
}

class KernelVsReference : public testing::TestWithParam<Case> {};

TEST_P(KernelVsReference, FloatMatches) {
  const Case& c = GetParam();
  expect_matches_reference<float>(c.method, c.order, c.cfg);
}

TEST_P(KernelVsReference, DoubleMatches) {
  const Case& c = GetParam();
  LaunchConfig cfg = c.cfg;
  if (cfg.vec == 4) cfg.vec = 2;  // double4 loads exceed 16 bytes
  expect_matches_reference<double>(c.method, c.order, cfg);
}

std::vector<Case> all_cases() {
  const std::vector<Method> methods = {
      Method::ForwardPlane, Method::InPlaneClassical, Method::InPlaneVertical,
      Method::InPlaneHorizontal, Method::InPlaneFullSlice};
  const std::vector<LaunchConfig> configs = {
      LaunchConfig{16, 4, 1, 1, 1},  LaunchConfig{32, 4, 1, 1, 4},
      LaunchConfig{16, 2, 2, 2, 2},  LaunchConfig{32, 2, 2, 4, 4},
      LaunchConfig{64, 8, 1, 1, 2},  LaunchConfig{16, 1, 4, 8, 4},
      LaunchConfig{32, 16, 1, 2, 1},
  };
  std::vector<Case> cases;
  for (Method m : methods) {
    for (int order : {2, 4, 6}) {
      for (const LaunchConfig& cfg : configs) {
        cases.push_back({m, order, cfg});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, KernelVsReference, testing::ValuesIn(all_cases()),
                         case_name);

// Random (asymmetric) coefficients catch sign/offset bugs that symmetric
// diffusion weights can mask.
TEST(KernelVsReferenceRandomCoeffs, FullSliceOrder8Double) {
  const StencilCoeffs cs = StencilCoeffs::random(4, /*seed=*/42);
  auto kernel = make_kernel<double>(Method::InPlaneFullSlice, cs,
                                    LaunchConfig{16, 4, 2, 2, 2});
  const Grid3<double> in = make_input(*kernel);
  Grid3<double> out = make_grid_for(*kernel, kExtent);
  run_kernel(*kernel, in, out, gpusim::DeviceSpec::tesla_c2070(),
             ExecMode::Functional);

  Grid3<double> gold(kExtent, cs.radius());
  gold.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<double> gold_out(kExtent, cs.radius());
  apply_reference(gold, gold_out, cs);
  EXPECT_TRUE(
      ulp_compare_grids(out, gold_out, UlpBudget::for_order(8, sizeof(double))).pass);
}

TEST(KernelVsReferenceRandomCoeffs, ForwardPlaneOrder8Double) {
  const StencilCoeffs cs = StencilCoeffs::random(4, /*seed=*/43);
  auto kernel =
      make_kernel<double>(Method::ForwardPlane, cs, LaunchConfig{32, 8, 1, 1, 1});
  const Grid3<double> in = make_input(*kernel);
  Grid3<double> out = make_grid_for(*kernel, kExtent);
  run_kernel(*kernel, in, out, gpusim::DeviceSpec::geforce_gtx680(),
             ExecMode::Functional);

  Grid3<double> gold(kExtent, cs.radius());
  gold.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<double> gold_out(kExtent, cs.radius());
  apply_reference(gold, gold_out, cs);
  EXPECT_TRUE(
      ulp_compare_grids(out, gold_out, UlpBudget::for_order(8, sizeof(double))).pass);
}

}  // namespace
}  // namespace inplane::kernels
