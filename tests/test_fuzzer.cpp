// The shrinking configuration fuzzer: deterministic sampling, sabotage
// detection, one-axis shrinking, replay-line round-tripping.

#include <gtest/gtest.h>

#include "verify/fuzzer.hpp"

namespace {

using namespace inplane;
using namespace inplane::verify;

TEST(Fuzzer, SampleStreamIsAPureFunctionOfSeedAndIteration) {
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(draw_sample(42, i), draw_sample(42, i));
  }
  EXPECT_NE(draw_sample(42, 0), draw_sample(42, 1));
  EXPECT_NE(draw_sample(42, 0), draw_sample(43, 0));
}

TEST(Fuzzer, LineRoundTripsThroughParse) {
  for (int i = 0; i < 30; ++i) {
    const FuzzSample s = draw_sample(9, i, i % 2 == 0 ? Sabotage::None
                                                      : Sabotage::HaloOffByOne);
    std::string error;
    const auto parsed = FuzzSample::parse(s.to_line(), &error);
    ASSERT_TRUE(parsed.has_value()) << s.to_line() << ": " << error;
    EXPECT_EQ(*parsed, s) << s.to_line();
  }
}

TEST(Fuzzer, ParseRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(FuzzSample::parse("method=warp order=2", &error));
  EXPECT_NE(error.find("method"), std::string::npos);
  EXPECT_FALSE(FuzzSample::parse("order=3", &error));
  EXPECT_FALSE(FuzzSample::parse("nx=0", &error));
  EXPECT_FALSE(FuzzSample::parse("banana", &error));
  EXPECT_FALSE(FuzzSample::parse("tx=notanumber", &error));
  EXPECT_FALSE(FuzzSample::parse("prec=quad", &error));
}

// Acceptance criterion: same seed => same samples and verdicts at any
// thread count.
TEST(Fuzzer, VerdictsAreIdenticalAcrossThreadCounts) {
  FuzzOptions serial;
  serial.seed = 5;
  serial.iters = 12;
  serial.policy = ExecPolicy{1};
  FuzzOptions parallel = serial;
  parallel.policy = ExecPolicy{4};

  const FuzzResult a = run_fuzz(serial);
  const FuzzResult b = run_fuzz(parallel);
  EXPECT_EQ(a.iters, b.iters);
  EXPECT_EQ(a.rejected, b.rejected);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].original, b.failures[i].original);
    EXPECT_EQ(a.failures[i].shrunk, b.failures[i].shrunk);
    EXPECT_EQ(a.failures[i].detail, b.failures[i].detail);
  }
}

TEST(Fuzzer, CleanKernelsSurviveFixedSeedFuzz) {
  FuzzOptions options;
  options.seed = 11;
  options.iters = 30;
  const FuzzResult result = run_fuzz(options);
  EXPECT_EQ(result.iters, 30);
  EXPECT_TRUE(result.pass()) << result.failures.size() << " failure(s), first: "
                             << (result.failures.empty()
                                     ? ""
                                     : result.failures[0].shrunk.to_line() + " — " +
                                           result.failures[0].detail);
  // The stream must actually exercise both accept and reject paths.
  EXPECT_GT(result.rejected, 0);
  EXPECT_LT(result.rejected, result.iters);
}

// Acceptance criterion: a deliberately broken kernel (off-by-one halo) is
// caught, shrunk to a minimal sample, and the replay line reproduces it.
TEST(Fuzzer, SabotagedKernelIsCaughtShrunkAndReplayable) {
  FuzzOptions options;
  options.seed = 3;
  options.iters = 10;
  options.sabotage = Sabotage::HaloOffByOne;
  const FuzzResult result = run_fuzz(options);
  ASSERT_FALSE(result.failures.empty());

  const FuzzFailure& f = result.failures.front();
  EXPECT_GT(f.shrink_steps, 0);
  // Minimality along every shrinkable axis: one more step on any axis
  // either stops failing or is no longer representable.
  EXPECT_EQ(f.shrunk.order, 2);
  EXPECT_EQ(f.shrunk.config.vec, 1);
  EXPECT_EQ(f.shrunk.config.rx, 1);
  EXPECT_EQ(f.shrunk.config.ry, 1);
  EXPECT_LE(f.shrunk.nx, f.original.nx);
  EXPECT_LE(f.shrunk.nz, f.original.nz);

  // Round-trip the repro line and replay it: still fails, same check.
  const auto parsed = FuzzSample::parse(f.shrunk.to_line());
  ASSERT_TRUE(parsed.has_value());
  const FuzzVerdict replay = run_sample(*parsed, options.device);
  EXPECT_FALSE(replay.pass);
  EXPECT_EQ(replay.detail, f.detail);
}

TEST(Fuzzer, ShrinkPreservesFailureAndShrinksMonotonically) {
  // A known-failing sabotaged sample with plenty of slack on every axis.
  FuzzSample big;
  big.method = kernels::Method::InPlaneFullSlice;
  big.order = 8;
  big.config = {32, 8, 2, 2, 2};
  big.nx = 128;
  big.ny = 32;
  big.nz = 12;
  big.double_precision = false;
  big.data_seed = 17;
  big.sabotage = Sabotage::HaloOffByOne;
  const FuzzVerdict verdict = run_sample(big, gpusim::DeviceSpec::geforce_gtx580());
  ASSERT_FALSE(verdict.pass);

  const FuzzFailure f =
      shrink_failure(big, verdict, gpusim::DeviceSpec::geforce_gtx580());
  EXPECT_EQ(f.original, big);
  EXPECT_LT(f.shrunk.order, big.order);
  EXPECT_LT(f.shrunk.nx, big.nx);
  const FuzzVerdict still = run_sample(f.shrunk, gpusim::DeviceSpec::geforce_gtx580());
  EXPECT_FALSE(still.pass);
}

TEST(Fuzzer, RejectedSamplesPassButAreTallied) {
  // 40 is not divisible by the 32-wide tile: loud rejection expected.
  FuzzSample s;
  s.method = kernels::Method::InPlaneVertical;
  s.order = 2;
  s.config = {32, 8, 1, 1, 1};
  s.nx = 40;
  s.ny = 8;
  s.nz = 4;
  const FuzzVerdict v = run_sample(s, gpusim::DeviceSpec::geforce_gtx580());
  EXPECT_TRUE(v.pass) << v.detail;
  EXPECT_TRUE(v.rejected);
}

}  // namespace
