// Report helpers: table rendering, CSV quoting, bar charts, surfaces,
// summary statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <vector>

#include "report/stats.hpp"
#include "report/table.hpp"

namespace inplane::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long header"});
  t.add_row({"1", "x"});
  t.add_row({"22", "yy"});
  const std::string out = t.render("title");
  EXPECT_NE(out.find("title\n"), std::string::npos);
  EXPECT_NE(out.find("| a  | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | yy          |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(BarChart, ScalesToMax) {
  const std::string out =
      bar_chart("t", {{"a", 1.0}, {"b", 2.0}}, 10);
  EXPECT_NE(out.find("a |#####     | 1.00"), std::string::npos);
  EXPECT_NE(out.find("b |##########| 2.00"), std::string::npos);
}

TEST(BarChart, HandlesAllZero) {
  const std::string out = bar_chart("", {{"a", 0.0}}, 10);
  EXPECT_NE(out.find("a |          | 0.00"), std::string::npos);
}

TEST(Surface, RendersInvalidAsDash) {
  const std::string out =
      surface("s", {"x1", "x2"}, {"y1"}, {{5.0, 0.0}});
  EXPECT_NE(out.find("| 5"), std::string::npos);
  EXPECT_NE(out.find("| -"), std::string::npos);
}

TEST(Surface, ValidatesShape) {
  EXPECT_THROW(surface("s", {"x"}, {"y1", "y2"}, {{1.0}}), std::invalid_argument);
  EXPECT_THROW(surface("s", {"x1", "x2"}, {"y"}, {{1.0}}), std::invalid_argument);
}

TEST(WriteFile, CreatesDirectoriesAndWrites) {
  const std::string path = "test_report_tmp/dir/file.txt";
  write_file(path, "hello");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::filesystem::remove_all("test_report_tmp");
}

TEST(Percentile, InterpolatesBetweenSortedSamples) {
  const std::vector<double> s = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 4.0);
  // p beyond the ends clamps rather than extrapolating or reading OOB.
  EXPECT_DOUBLE_EQ(percentile(s, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 250.0), 4.0);
}

TEST(Percentile, EdgeCasesNeverReadOutOfBounds) {
  // Empty input returns 0.0, matching the median/mean contract.
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  // A single sample is every percentile of itself — p = 100 used to
  // compute lo = size, one past the end.
  for (const double p : {0.0, 37.5, 100.0, 1e9}) {
    EXPECT_DOUBLE_EQ(percentile({7.25}, p), 7.25) << "p=" << p;
  }
  // p = 100 must return exactly the maximum, not interpolate past it.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 100.0), 2.0);
  // A NaN p survives std::clamp; it must come back as NaN, not index UB.
  EXPECT_TRUE(std::isnan(percentile({1.0, 2.0, 3.0}, std::nan(""))));
  EXPECT_DOUBLE_EQ(percentile({}, std::nan("")), 0.0);
}

}  // namespace
}  // namespace inplane::report
