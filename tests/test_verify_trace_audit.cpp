// Pillar 3 of the verification subsystem: the trace auditor and the
// CRC-framed golden-trace snapshots for the paper's pinned configs.

#include <gtest/gtest.h>

#include "autotune/search_space.hpp"
#include "core/stencil_spec.hpp"
#include "kernels/stencil_kernel.hpp"
#include "verify/trace_audit.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

const gpusim::DeviceSpec kDevice = gpusim::DeviceSpec::geforce_gtx580();

// Acceptance criterion: the closed-form per-plane invariants — 6r+2
// naive refs beaten, 7r+1 / 8r+1 flops, exact loaded region, store-once,
// coalescing bounds, bank-replay recount, 2 barriers — hold for every
// method at every paper order, as a plain ctest.
class AuditAllOrders
    : public ::testing::TestWithParam<std::tuple<Method, int>> {};

TEST_P(AuditAllOrders, SteadyStatePlaneSatisfiesClosedForms) {
  const auto [method, order] = GetParam();
  LaunchConfig cfg{32, 8, 1, 1, 1};
  cfg.vec = autotune::default_vec(method, sizeof(float));
  const auto kernel =
      make_kernel<float>(method, StencilCoeffs::diffusion(order / 2), cfg);
  const verify::AuditReport report =
      verify::audit_kernel(*kernel, kDevice, {256, 64, 32});
  EXPECT_TRUE(report.pass()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByOrder, AuditAllOrders,
    ::testing::Combine(::testing::Values(Method::ForwardPlane,
                                         Method::InPlaneClassical,
                                         Method::InPlaneVertical,
                                         Method::InPlaneHorizontal,
                                         Method::InPlaneFullSlice),
                       ::testing::Values(2, 4, 6, 8, 10, 12)),
    [](const auto& inst) {
      std::string name = to_string(std::get<0>(inst.param));
      std::erase(name, '-');
      return name + "_order" + std::to_string(std::get<1>(inst.param));
    });

TEST(TraceAudit, RegisterTiledAndVectorisedVariantsPass) {
  for (const LaunchConfig cfg :
       {LaunchConfig{16, 8, 2, 2, 2}, LaunchConfig{16, 4, 4, 1, 4},
        LaunchConfig{64, 2, 1, 2, 1}}) {
    for (Method m : {Method::ForwardPlane, Method::InPlaneHorizontal,
                     Method::InPlaneFullSlice}) {
      const auto kernel = make_kernel<float>(m, StencilCoeffs::diffusion(3), cfg);
      const verify::AuditReport report =
          verify::audit_kernel(*kernel, kDevice, {256, 64, 32});
      EXPECT_TRUE(report.pass())
          << to_string(m) << " " << cfg.to_string() << ": " << report.summary();
    }
  }
}

// Negative tests: each tampered counter trips the invariant named for it.
TEST(TraceAudit, TamperedCountersAreCaughtByName) {
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<float>(Method::InPlaneFullSlice, StencilCoeffs::diffusion(2), cfg);
  const gpusim::TraceStats honest = kernel->trace_plane(kDevice, {256, 64, 32});
  ASSERT_TRUE(verify::audit_plane_trace(Method::InPlaneFullSlice, 4, cfg,
                                        sizeof(float), honest, kDevice)
                  .pass());

  const auto violated = [&](gpusim::TraceStats t) {
    const verify::AuditReport r = verify::audit_plane_trace(
        Method::InPlaneFullSlice, 4, cfg, sizeof(float), t, kDevice);
    EXPECT_FALSE(r.pass());
    return r.violations.empty() ? std::string() : r.violations[0].invariant;
  };

  gpusim::TraceStats t = honest;
  t.flops += 1;
  EXPECT_EQ(violated(t), "flops-inplane-8r+1");

  t = honest;
  t.bytes_requested_ld += sizeof(float);  // one duplicate halo element
  EXPECT_EQ(violated(t), "refs-region-exact");

  t = honest;
  t.bytes_requested_st *= 2;  // every point stored twice
  EXPECT_EQ(violated(t), "store-once");

  t = honest;
  t.load_transactions /= 2;  // impossible: below the coalescing floor
  EXPECT_EQ(violated(t), "coalesce-load-lower-bound");

  t = honest;
  t.smem_replays = 32 * t.smem_instrs + 1;
  EXPECT_EQ(violated(t), "bank-replay-recount");

  t = honest;
  t.syncs = 3;
  EXPECT_EQ(violated(t), "syncs-per-plane");
}

TEST(TraceAudit, WrongMethodFlopCountIsCrossCaught) {
  // A forward-plane trace presented as in-plane misses the 8r+1 count.
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<float>(Method::ForwardPlane, StencilCoeffs::diffusion(3), cfg);
  const gpusim::TraceStats t = kernel->trace_plane(kDevice, {256, 64, 32});
  const verify::AuditReport r = verify::audit_plane_trace(
      Method::InPlaneClassical, 6, cfg, sizeof(float), t, kDevice);
  ASSERT_FALSE(r.pass());
  EXPECT_EQ(r.violations[0].invariant, "flops-inplane-8r+1");
}

// Satellite (d): golden-trace CRC snapshots for the paper's pinned
// configurations — the nvstencil-default launch config on the GTX 580
// over the 512x512x256 evaluation grid (Table II's two methods, every
// paper order).  A change to any of the 13 trace counters — an extra
// load, a lost barrier, a skewed transaction count — changes the CRC and
// fails here; if the change is intentional, regenerate with
// verify::trace_crc and update the table.
TEST(TraceAudit, GoldenTraceCrcsForPaperConfigs) {
  struct Golden {
    Method method;
    int order;
    std::uint32_t crc;
  };
  const Golden golden[] = {
      {Method::ForwardPlane, 2, 0x6ed0bbe5u},
      {Method::ForwardPlane, 4, 0x7df9a8c9u},
      {Method::ForwardPlane, 6, 0x8725c7bcu},
      {Method::ForwardPlane, 8, 0x8e891962u},
      {Method::ForwardPlane, 10, 0x0b8f7361u},
      {Method::ForwardPlane, 12, 0x26c1ece5u},
      {Method::InPlaneFullSlice, 2, 0x193694bdu},
      {Method::InPlaneFullSlice, 4, 0x4540e685u},
      {Method::InPlaneFullSlice, 6, 0x8c4c999bu},
      {Method::InPlaneFullSlice, 8, 0x67407f0eu},
      {Method::InPlaneFullSlice, 10, 0xe784501bu},
      {Method::InPlaneFullSlice, 12, 0xa00bf46au},
  };
  const Extent3 extent{512, 512, 256};
  for (const Golden& g : golden) {
    LaunchConfig cfg = LaunchConfig::nvstencil_default();
    cfg.vec = autotune::default_vec(g.method, sizeof(float));
    const auto kernel =
        make_kernel<float>(g.method, StencilCoeffs::diffusion(g.order / 2), cfg);
    const gpusim::TraceStats t = kernel->trace_plane(kDevice, extent);
    EXPECT_EQ(verify::trace_crc(t), g.crc)
        << to_string(g.method) << " order " << g.order << ": trace shape changed";
    // The snapshot must also still satisfy the closed-form invariants.
    EXPECT_TRUE(verify::audit_plane_trace(g.method, g.order, cfg, sizeof(float), t,
                                          kDevice)
                    .pass());
  }
}

TEST(TraceAudit, CrcIsSensitiveToEveryCounter) {
  gpusim::TraceStats t;
  t.load_instrs = 1;
  const std::uint32_t base = verify::trace_crc(t);
  gpusim::TraceStats u = t;
  u.syncs = 1;
  EXPECT_NE(verify::trace_crc(u), base);
  u = t;
  u.smem_replays = 1;
  EXPECT_NE(verify::trace_crc(u), base);
  EXPECT_EQ(verify::trace_crc(t), base);  // deterministic
}

}  // namespace
