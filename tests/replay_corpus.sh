#!/bin/sh
# Replays every line of the fuzz corpus through stencil_fuzz --replay.
#
#   replay_corpus.sh <stencil_fuzz-binary> <corpus-file>
#
# Exits non-zero on the first line whose replay fails (exit 1 = a
# verification pillar failed, exit 2 = the line no longer parses — both
# are regressions).  Loudly-rejected configurations exit 0 and pass.
set -eu

fuzz_bin=$1
corpus=$2

[ -x "$fuzz_bin" ] || { echo "replay_corpus: $fuzz_bin not executable" >&2; exit 2; }
[ -f "$corpus" ] || { echo "replay_corpus: $corpus not found" >&2; exit 2; }

total=0
while IFS= read -r line || [ -n "$line" ]; do
  case "$line" in
    ''|\#*) continue ;;
  esac
  total=$((total + 1))
  if ! "$fuzz_bin" --replay "$line"; then
    echo "replay_corpus: FAILED on line: $line" >&2
    exit 1
  fi
done < "$corpus"

if [ "$total" -eq 0 ]; then
  echo "replay_corpus: corpus is empty — nothing was tested" >&2
  exit 2
fi
echo "replay_corpus: $total line(s) replayed clean"
