// OpenCL code generator and device-description files.

#include <gtest/gtest.h>

#include <filesystem>

#include "codegen/opencl_codegen.hpp"
#include "gpusim/device_file.hpp"

namespace inplane {
namespace {

using codegen::CudaKernelSpec;
using kernels::LaunchConfig;
using kernels::Method;

int count(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

CudaKernelSpec spec(Method m, int r, LaunchConfig cfg, bool dp = false) {
  CudaKernelSpec s;
  s.method = m;
  s.radius = r;
  s.config = cfg;
  s.is_double = dp;
  return s;
}

// --- OpenCL backend -----------------------------------------------------------

TEST(OpenClCodegen, InPlaneKernelStructure) {
  const std::string src = codegen::generate_opencl_kernel(
      spec(Method::InPlaneFullSlice, 2, {64, 4, 2, 2, 4}));
  EXPECT_NE(src.find("__kernel"), std::string::npos);
  EXPECT_NE(src.find("__local float tile"), std::string::npos);
  EXPECT_NE(src.find("barrier(CLK_LOCAL_MEM_FENCE);"), std::string::npos);
  EXPECT_NE(src.find("vload4"), std::string::npos);
  EXPECT_NE(src.find("vstore4"), std::string::npos);
  EXPECT_NE(src.find("q[col][d] += c_w[d + 1] * cur;"), std::string::npos);  // Eqn. 5
  EXPECT_NE(src.find("get_local_id(0)"), std::string::npos);
  EXPECT_NE(src.find("reqd_work_group_size(K_TX, K_TY, 1)"), std::string::npos);
  EXPECT_EQ(src.find("__global__"), std::string::npos);  // no CUDA leakage
  EXPECT_EQ(src.find("threadIdx"), std::string::npos);
  EXPECT_EQ(count(src, "{"), count(src, "}"));
}

TEST(OpenClCodegen, ForwardKernelStructure) {
  const std::string src =
      codegen::generate_opencl_kernel(spec(Method::ForwardPlane, 3, {32, 16, 1, 1, 1}));
  EXPECT_NE(src.find("pipe[K_COLS][2 * R + 1]"), std::string::npos);
  EXPECT_EQ(count(src, "// corners"), 4);
  EXPECT_EQ(src.find("vload"), std::string::npos);  // scalar baseline
  EXPECT_EQ(count(src, "{"), count(src, "}"));
}

TEST(OpenClCodegen, DoubleEnablesFp64Extension) {
  const std::string src = codegen::generate_opencl_kernel(
      spec(Method::InPlaneHorizontal, 1, {32, 8, 1, 1, 2}, true));
  EXPECT_NE(src.find("cl_khr_fp64"), std::string::npos);
  EXPECT_NE(src.find("vload2"), std::string::npos);
  EXPECT_NE(src.find("__local double tile"), std::string::npos);
}

TEST(OpenClCodegen, TemporalKernelMirrorsCudaStaging) {
  auto s = spec(Method::InPlaneFullSlice, 1, {16, 8, 1, 1, 1});
  s.config.tb = 3;
  const std::string src = codegen::generate_opencl_kernel(s);
  EXPECT_NE(src.find("_tb3"), std::string::npos);
  EXPECT_NE(src.find("#define TB 3"), std::string::npos);
  EXPECT_NE(src.find("__local float slice[K_SLICE_H * K_SLICE_ROW];"),
            std::string::npos);
  EXPECT_NE(src.find("__local float ring1["), std::string::npos);
  EXPECT_NE(src.find("__local float ring2["), std::string::npos);
  EXPECT_EQ(src.find("ring3"), std::string::npos);
  EXPECT_NE(src.find("int nz, long pitch, long plane, int nx, int ny)"),
            std::string::npos);
  EXPECT_NE(src.find("INTERIOR(x0 + ex, y0 + ey, j1) ? q[i][R - 1] : back[i][R - 1]"),
            std::string::npos);
  EXPECT_NE(src.find("RING1_AT(gx, gy, js - m) + RING1_AT(gx, gy, js + m)"),
            std::string::npos);
  // TB + 1 barriers per plane, plus one after the preseed.
  EXPECT_EQ(count(src, "barrier(CLK_LOCAL_MEM_FENCE);"), 5);
  EXPECT_EQ(src.find("__syncthreads"), std::string::npos);  // no CUDA leakage
  EXPECT_EQ(count(src, "{"), count(src, "}"));
}

TEST(OpenClCodegen, AllMethodsBalanced) {
  for (Method m : {Method::ForwardPlane, Method::InPlaneClassical,
                   Method::InPlaneVertical, Method::InPlaneHorizontal,
                   Method::InPlaneFullSlice}) {
    const std::string src =
        codegen::generate_opencl_kernel(spec(m, 2, {32, 4, 2, 2, 1}));
    EXPECT_EQ(count(src, "{"), count(src, "}")) << kernels::to_string(m);
  }
}

// --- Device files ---------------------------------------------------------------

TEST(DeviceFile, RoundTripsEveryField) {
  const gpusim::DeviceSpec original = gpusim::DeviceSpec::geforce_gtx680();
  const gpusim::DeviceSpec back =
      gpusim::device_from_text(gpusim::device_to_text(original));
  EXPECT_EQ(back.name, original.name);
  EXPECT_EQ(back.arch, original.arch);
  EXPECT_EQ(back.sm_count, original.sm_count);
  EXPECT_EQ(back.cores_per_sm, original.cores_per_sm);
  EXPECT_DOUBLE_EQ(back.clock_ghz, original.clock_ghz);
  EXPECT_DOUBLE_EQ(back.achieved_bw_gbs, original.achieved_bw_gbs);
  EXPECT_EQ(back.coalesce_bytes, original.coalesce_bytes);
  EXPECT_EQ(back.store_segment_bytes, original.store_segment_bytes);
  EXPECT_DOUBLE_EQ(back.dp_throughput_ratio, original.dp_throughput_ratio);
  EXPECT_DOUBLE_EQ(back.max_outstanding_loads_per_warp,
                   original.max_outstanding_loads_per_warp);
  EXPECT_DOUBLE_EQ(back.peak_sp_gflops(), original.peak_sp_gflops());
}

TEST(DeviceFile, CommentsAndDefaults) {
  const gpusim::DeviceSpec d = gpusim::device_from_text(
      "# a hypothetical card\n"
      "name = TestCard\n"
      "arch = kepler\n"
      "sm_count = 4   # small\n"
      "\n");
  EXPECT_EQ(d.name, "TestCard");
  EXPECT_EQ(d.arch, gpusim::Arch::Kepler);
  EXPECT_EQ(d.sm_count, 4);
  EXPECT_EQ(d.warp_size, 32);  // default preserved
}

TEST(DeviceFile, RejectsMalformedInput) {
  EXPECT_THROW((void)gpusim::device_from_text("sm_count 16"), std::runtime_error);
  EXPECT_THROW((void)gpusim::device_from_text("bogus_key = 3"), std::runtime_error);
  EXPECT_THROW((void)gpusim::device_from_text("arch = vega"), std::runtime_error);
}

TEST(DeviceFile, FileRoundTrip) {
  const auto original = gpusim::DeviceSpec::tesla_c2070();
  gpusim::save_device(original, "test_dev_tmp/c2070.device");
  const auto back = gpusim::load_device("test_dev_tmp/c2070.device");
  EXPECT_EQ(back.name, original.name);
  EXPECT_DOUBLE_EQ(back.achieved_bw_gbs, original.achieved_bw_gbs);
  EXPECT_THROW((void)gpusim::load_device("test_dev_tmp/missing.device"),
               std::runtime_error);
  std::filesystem::remove_all("test_dev_tmp");
}

}  // namespace
}  // namespace inplane
