// Property and crash-safety tests for the tuner daemon's wisdom cache:
// key-line round-trip/reject laws, LRU laws against a reference model,
// capacity invariants under random operation streams, persistence and
// reload ordering, eviction-driven compaction, and torn-tail / corrupt
// CRC / foreign-header recovery.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "core/crc32.hpp"
#include "service/wisdom_cache.hpp"

namespace fs = std::filesystem;
using inplane::autotune::TuneEntry;
using inplane::autotune::encode_tune_entry;
using inplane::service::WisdomCache;
using inplane::service::WisdomKey;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

WisdomKey make_key(int i) {
  WisdomKey key;
  key.method = "fullslice";
  key.device = "gtx580";
  key.device_fp = std::uint64_t{0xfeed} + static_cast<std::uint64_t>(i);
  key.order = 4;
  key.extent = inplane::Extent3{64 + 16 * i, 32, 8};
  key.kind = "model";
  key.beta = 0.05;
  return key;
}

TuneEntry make_entry(int seed) {
  TuneEntry e;
  e.config.tx = 16 + seed;
  e.config.ty = 8;
  e.config.rx = 2;
  e.config.ry = 2;
  e.config.vec = 1;
  e.executed = true;
  e.attempts = 1;
  e.timing.valid = true;
  e.timing.seconds = 0.001 * (seed + 1);
  e.timing.mpoints_per_s = 1000.0 + seed;
  e.model_mpoints = 900.0 + seed;
  return e;
}

void expect_same_entry(const TuneEntry& a, const TuneEntry& b) {
  EXPECT_EQ(encode_tune_entry(a), encode_tune_entry(b));
}

std::string temp_path(const char* tag) {
  static int n = 0;
  return (fs::temp_directory_path() /
          ("wisdom_test_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(n++) + ".bin"))
      .string();
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(path + ".orphan", ec);
    fs::remove(path + ".tmp", ec);
  }
};

// Raw record framing (mirrors the wisdom file layout) for crafting
// legacy-format files byte by byte.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::string frame_wisdom_record(const std::string& key_line, const std::string& entry) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(key_line.size()));
  payload.append(key_line);
  put_u32(payload, static_cast<std::uint32_t>(entry.size()));
  payload.append(entry);
  std::string framed;
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  put_u32(framed, inplane::crc32(payload.data(), payload.size()));
  framed.append(payload);
  return framed;
}

/// Drops the trailing " tb=N" field, producing a pre-degree key line.
std::string strip_tb(std::string line) {
  const auto pos = line.find(" tb=");
  EXPECT_NE(pos, std::string::npos) << line;
  line.erase(pos);
  return line;
}

/// Drops the temporal-blocking i32 (the 6th config field, bytes 20..23),
/// producing the pre-degree (IPTJ2-era) entry payload layout.
std::string strip_tb_payload(std::string payload) {
  EXPECT_GE(payload.size(), 24u);
  payload.erase(20, 4);
  return payload;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------ key laws --

TEST(WisdomKey, LineRoundTripsThroughParse) {
  const WisdomKey key = make_key(3);
  const std::string line = key.to_line();
  const auto parsed = WisdomKey::parse(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(*parsed, key.canonical());
  EXPECT_EQ(parsed->to_line(), line);
}

TEST(WisdomKey, DevfpIsOptionalOnTheWire) {
  const auto parsed = WisdomKey::parse(
      "method=classical device=c2070 order=2 prec=dp nx=32 ny=32 nz=8 "
      "kind=exhaustive beta=0");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->device_fp, 0u);
  EXPECT_EQ(parsed->method, "classical");
  EXPECT_TRUE(parsed->double_precision);
}

TEST(WisdomKey, ParseRejectsMalformedLinesLoudly) {
  const char* kBad[] = {
      "",
      "garbage",
      "method=fullslice",  // missing fields
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 kind=model",  // duplicate
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 color=red",  // unknown field
      "method=fullslice device=gtx580 order=0 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05",  // order out of range
      "method=fullslice device=gtx580 order=4 prec=hp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05",  // bad precision
      "method=fullslice device=gtx580 order=4 prec=sp nx=0 ny=32 nz=8 "
      "kind=model beta=0.05",  // zero extent
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=oracle beta=0.05",  // unknown kind
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=1.5",  // beta out of [0, 1]
      "method=fullslice device=gtx580 order=4 prec=sp nx=64  ny=32 nz=8 "
      "kind=model beta=0.05",  // double space
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 devfp=12ab",  // devfp without 0x
      "method=fullslice noequals order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05",  // token without '='
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 tb=0",  // temporal degree below 1
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 tb=9",  // temporal degree above 8
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 tb=two",  // non-numeric temporal degree
      "method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 "
      "kind=model beta=0.05 tb=2 tb=2",  // duplicate tb
  };
  for (const char* line : kBad) {
    std::string error;
    EXPECT_FALSE(WisdomKey::parse(line, &error).has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(WisdomKey, ExhaustiveCanonicalisationPinsBeta) {
  WisdomKey a = make_key(0);
  a.kind = "exhaustive";
  a.beta = 0.3;
  WisdomKey b = a;
  b.beta = 0.9;
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.to_line(), b.to_line());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // ... but model-guided sweeps keep beta as part of the identity.
  a.kind = "model";
  b.kind = "model";
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(WisdomKey, FingerprintIsSensitiveToEveryField) {
  const WisdomKey base = make_key(0);
  const std::uint64_t fp = base.fingerprint();
  WisdomKey k = base;
  k.method = "classical";
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.device = "c2070";
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.device_fp ^= 1;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.order = 6;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.double_precision = true;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.extent.nz += 1;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.kind = "exhaustive";
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.beta = 0.25;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.temporal_degree = 2;
  EXPECT_NE(k.fingerprint(), fp);
}

TEST(WisdomKey, TemporalDegreeRoundTripsAndSeparatesIdentity) {
  WisdomKey key = make_key(1);
  key.temporal_degree = 3;
  const std::string line = key.to_line();
  EXPECT_NE(line.find(" tb=3"), std::string::npos) << line;
  const auto parsed = WisdomKey::parse(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->temporal_degree, 3);
  EXPECT_EQ(*parsed, key.canonical());
  EXPECT_EQ(parsed->to_line(), line);
  // A wire key without tb (a pre-degree client) defaults to a single-step
  // sweep; the degree is part of the cache identity either way.
  const auto wire = WisdomKey::parse(strip_tb(make_key(1).to_line()));
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->temporal_degree, 1);
  EXPECT_NE(key.fingerprint(), make_key(1).fingerprint());
  EXPECT_NE(key.to_line(), make_key(1).to_line());
}

// ------------------------------------------------------------- LRU laws --

TEST(WisdomCacheLru, FindAndPutRefreshRecency) {
  WisdomCache cache(8);
  cache.put(make_key(0), make_entry(0));
  cache.put(make_key(1), make_entry(1));
  cache.put(make_key(2), make_entry(2));
  // Recency after three inserts: 0 (LRU), 1, 2 (MRU).
  ASSERT_EQ(cache.lru_order().size(), 3u);
  EXPECT_EQ(cache.lru_order().front(), make_key(0).canonical());

  ASSERT_TRUE(cache.find(make_key(0)).has_value());  // bump 0 to MRU
  EXPECT_EQ(cache.lru_order().front(), make_key(1).canonical());
  EXPECT_EQ(cache.lru_order().back(), make_key(0).canonical());

  cache.put(make_key(1), make_entry(9));  // update bumps too
  EXPECT_EQ(cache.lru_order().back(), make_key(1).canonical());
  expect_same_entry(*cache.find(make_key(1)), make_entry(9));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(WisdomCacheLru, EvictsLeastRecentlyUsedAtCapacity) {
  WisdomCache cache(3);
  for (int i = 0; i < 3; ++i) cache.put(make_key(i), make_entry(i));
  ASSERT_TRUE(cache.find(make_key(0)).has_value());  // protect 0
  cache.put(make_key(3), make_entry(3));             // evicts 1, the LRU
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.find(make_key(1)).has_value());
  EXPECT_TRUE(cache.find(make_key(0)).has_value());
  EXPECT_TRUE(cache.find(make_key(2)).has_value());
  EXPECT_TRUE(cache.find(make_key(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// Reference LRU model: a plain vector, least-recent first.
struct ModelLru {
  std::size_t capacity;
  std::vector<std::pair<WisdomKey, int>> items;
  std::size_t hits = 0, misses = 0, evictions = 0;

  explicit ModelLru(std::size_t cap) : capacity(cap) {}

  std::ptrdiff_t index_of(const WisdomKey& key) const {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].first == key) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  }
  bool find(const WisdomKey& key) {
    const auto i = index_of(key);
    if (i < 0) {
      ++misses;
      return false;
    }
    auto item = items[static_cast<std::size_t>(i)];
    items.erase(items.begin() + i);
    items.push_back(item);
    ++hits;
    return true;
  }
  void put(const WisdomKey& key, int tag) {
    const auto i = index_of(key);
    if (i >= 0) {
      items.erase(items.begin() + i);
    } else if (items.size() >= capacity) {
      items.erase(items.begin());
      ++evictions;
    }
    items.emplace_back(key, tag);
  }
};

TEST(WisdomCacheLru, RandomOpStreamMatchesReferenceModel) {
  constexpr std::size_t kCapacity = 5;
  constexpr int kKeys = 9;
  constexpr int kOps = 4000;
  WisdomCache cache(kCapacity);
  ModelLru model(kCapacity);
  std::uint64_t rng = 20260807;

  for (int op = 0; op < kOps; ++op) {
    const int k = static_cast<int>(splitmix64(rng) % kKeys);
    const WisdomKey key = make_key(k).canonical();
    if (splitmix64(rng) % 2 == 0) {
      const int tag = static_cast<int>(splitmix64(rng) % 32);
      cache.put(key, make_entry(tag));
      model.put(key, tag);
    } else {
      const auto got = cache.find(key);
      const bool expected = model.find(key);
      ASSERT_EQ(got.has_value(), expected) << "op " << op;
    }
    // Capacity invariant holds after *every* operation.
    ASSERT_LE(cache.size(), kCapacity);
    ASSERT_EQ(cache.size(), model.items.size());
  }

  // Terminal state: identical recency order, identical values.
  const std::vector<WisdomKey> order = cache.lru_order();
  ASSERT_EQ(order.size(), model.items.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], model.items[i].first) << "slot " << i;
    expect_same_entry(*cache.find(model.items[i].first),
                      make_entry(model.items[i].second));
  }
  const WisdomCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, model.hits + order.size());  // final sweep re-finds
  EXPECT_EQ(stats.misses, model.misses);
  EXPECT_EQ(stats.evictions, model.evictions);
}

// --------------------------------------------------------- persistence --

TEST(WisdomCachePersistence, ReloadsEntriesInAppendOrder) {
  const PathGuard guard(temp_path("reload"));
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    cache.put(make_key(0), make_entry(0));
    cache.put(make_key(1), make_entry(1));
    cache.put(make_key(2), make_entry(2));
    // A find() bumps in-memory recency but appends nothing: the reload
    // order is the *file append order*, documented and pinned here.
    ASSERT_TRUE(cache.find(make_key(0)).has_value());
  }
  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 3u);
  EXPECT_EQ(reloaded.stats().records_recovered, 3u);
  EXPECT_EQ(reloaded.stats().torn_bytes, 0u);
  const std::vector<WisdomKey> order = reloaded.lru_order();
  ASSERT_EQ(order.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], make_key(i).canonical());
    expect_same_entry(*reloaded.find(make_key(i)), make_entry(i));
  }
}

// A wisdom file written before the temporal-degree dimension existed
// (key lines without tb=, entry payloads in the shorter IPTJ2-era
// layout) must reload as *degree-2* entries — the degree the temporal
// kernel was hard-wired to when those records were measured — loudly:
// a stderr warning plus the legacy_upgraded counter, never a silent
// re-key and never a torn-tail truncation.
TEST(WisdomCachePersistence, PreDegreeFileReloadsAsDegreeTwoLoudly) {
  PathGuard guard(temp_path("legacy"));
  {
    WisdomCache cache;
    cache.open(guard.path, 8);  // writes a fresh IPWZ1 header, no records
  }
  std::string bytes = read_file(guard.path);
  ASSERT_EQ(bytes.size(), 14u);  // magic "IPWZ1\n" + u64 schema fingerprint
  for (int i = 0; i < 2; ++i) {
    bytes += frame_wisdom_record(strip_tb(make_key(i).to_line()),
                                 strip_tb_payload(encode_tune_entry(make_entry(i))));
  }
  // A modern record after the legacy prefix must still be adopted.
  bytes += frame_wisdom_record(make_key(2).to_line(),
                               encode_tune_entry(make_entry(2)));
  write_file(guard.path, bytes);

  WisdomCache reloaded;
  testing::internal::CaptureStderr();
  reloaded.open(guard.path, 8);
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("pre-degree"), std::string::npos) << warning;
  EXPECT_EQ(reloaded.stats().legacy_upgraded, 2u);
  EXPECT_EQ(reloaded.stats().records_recovered, 3u);
  EXPECT_EQ(reloaded.stats().torn_bytes, 0u);
  EXPECT_FALSE(reloaded.stats().rejected_file);

  for (int i = 0; i < 2; ++i) {
    WisdomKey degree2 = make_key(i);
    degree2.temporal_degree = 2;
    const auto hit = reloaded.find(degree2);
    ASSERT_TRUE(hit.has_value()) << i;
    TuneEntry want = make_entry(i);
    want.config.tb = 2;  // the upgrade stamps the config too
    expect_same_entry(*hit, want);
    // The single-step slot stays empty — no silent aliasing.
    EXPECT_FALSE(reloaded.find(make_key(i)).has_value()) << i;
  }
  expect_same_entry(*reloaded.find(make_key(2)), make_entry(2));
}

TEST(WisdomCachePersistence, LastRecordPerKeyWinsAcrossRestarts) {
  const PathGuard guard(temp_path("lastwins"));
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    cache.put(make_key(0), make_entry(1));
    cache.put(make_key(0), make_entry(7));
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.stats().updates, 1u);
  }
  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 1u);
  expect_same_entry(*reloaded.find(make_key(0)), make_entry(7));
}

TEST(WisdomCachePersistence, EvictionCompactsTheFileToLiveEntries) {
  const PathGuard guard(temp_path("compact"));
  std::uintmax_t size_before = 0;
  {
    WisdomCache cache(2);
    cache.open(guard.path, 2);
    cache.put(make_key(0), make_entry(0));
    cache.put(make_key(1), make_entry(1));
    size_before = fs::file_size(guard.path);
    cache.put(make_key(2), make_entry(2));  // evicts key 0, compacts
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_GE(cache.stats().compactions, 1u);
  }
  // The compacted file holds exactly the two live entries — the victim's
  // record is gone, so the file did not grow.
  EXPECT_LE(fs::file_size(guard.path), size_before);
  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_FALSE(reloaded.find(make_key(0)).has_value());
  EXPECT_TRUE(reloaded.find(make_key(1)).has_value());
  EXPECT_TRUE(reloaded.find(make_key(2)).has_value());
}

// --------------------------------------------------------- crash safety --

TEST(WisdomCacheCrash, TornTailIsTruncatedAndValidPrefixRecovered) {
  const PathGuard guard(temp_path("torn"));
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    cache.put(make_key(0), make_entry(0));
    cache.put(make_key(1), make_entry(1));
  }
  // Tear the last record: drop 5 bytes from the tail.
  const std::string bytes = read_file(guard.path);
  ASSERT_GT(bytes.size(), 5u);
  write_file(guard.path, bytes.substr(0, bytes.size() - 5));

  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.stats().records_recovered, 1u);
  EXPECT_GT(reloaded.stats().torn_bytes, 0u);
  EXPECT_TRUE(reloaded.find(make_key(0)).has_value());
  EXPECT_FALSE(reloaded.find(make_key(1)).has_value());

  // The cache stays fully usable: re-put the lost key and reload again.
  reloaded.put(make_key(1), make_entry(1));
  WisdomCache again(8);
  again.open(guard.path, 8);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.stats().torn_bytes, 0u);  // the tail is clean now
}

TEST(WisdomCacheCrash, CorruptCrcDropsTheRecordAndItsSuffix) {
  const PathGuard guard(temp_path("crc"));
  std::uintmax_t first_record_end = 0;
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    cache.put(make_key(0), make_entry(0));
    first_record_end = fs::file_size(guard.path);
    cache.put(make_key(1), make_entry(1));
  }
  // Flip one payload byte inside the second record.
  std::string bytes = read_file(guard.path);
  ASSERT_GT(bytes.size(), first_record_end + 10);
  bytes[first_record_end + 9] ^= 0x40;
  write_file(guard.path, bytes);

  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.find(make_key(0)).has_value());
  EXPECT_FALSE(reloaded.find(make_key(1)).has_value());
  EXPECT_GT(reloaded.stats().torn_bytes, 0u);
}

TEST(WisdomCacheCrash, ForeignFileIsPreservedAsOrphanNotClobbered) {
  const PathGuard guard(temp_path("foreign"));
  write_file(guard.path, "this is not a wisdom file at all\n");

  WisdomCache cache(8);
  cache.open(guard.path, 8);
  EXPECT_TRUE(cache.stats().rejected_file);
  EXPECT_EQ(cache.size(), 0u);
  // The unrecognised bytes survive, byte-for-byte, next to the fresh file.
  EXPECT_EQ(read_file(guard.path + ".orphan"),
            "this is not a wisdom file at all\n");

  // And the fresh cache works.
  cache.put(make_key(0), make_entry(0));
  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_FALSE(reloaded.stats().rejected_file);
  EXPECT_EQ(reloaded.size(), 1u);
}

TEST(WisdomCacheCrash, SimulatedTornWriteLeavesRecoverablePrefix) {
  const PathGuard guard(temp_path("hook"));
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    // Arm: 1 more clean put, then the next one tears mid-record and
    // drops the file handle (exit_code < 0 = no process exit, testable
    // in-process).
    cache.simulate_torn_write_after(1, -1);
    cache.put(make_key(0), make_entry(0));
    cache.put(make_key(1), make_entry(1));  // torn on disk, present in memory
    EXPECT_TRUE(cache.find(make_key(1)).has_value());
  }
  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_GT(reloaded.stats().torn_bytes, 0u);
  EXPECT_TRUE(reloaded.find(make_key(0)).has_value());
  EXPECT_FALSE(reloaded.find(make_key(1)).has_value());
}

TEST(WisdomCacheCrash, DiskFullDegradesToServeFromMemoryWithTypedStatus) {
  const PathGuard guard(temp_path("diskfull"));
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    EXPECT_TRUE(cache.put(make_key(0), make_entry(0)).ok());

    // The next append half-writes its record, then hits the simulated
    // ENOSPC.  put() must surface a typed Status — never throw, never
    // crash — keep serving the entry from memory, and truncate the torn
    // half-record back off the file.
    cache.simulate_write_error_after(0);
    const inplane::Status st = cache.put(make_key(1), make_entry(1));
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code, inplane::ErrorCode::IoError);
    ASSERT_TRUE(cache.find(make_key(1)).has_value());
    expect_same_entry(*cache.find(make_key(1)), make_entry(1));
    EXPECT_EQ(cache.stats().write_errors, 1u);
    EXPECT_TRUE(cache.stats().degraded_to_memory);

    // Degraded: every further put serves memory and reports the typed
    // failure; nothing else reaches the disk.
    const inplane::Status again = cache.put(make_key(2), make_entry(2));
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.code, inplane::ErrorCode::IoError);
    ASSERT_TRUE(cache.find(make_key(2)).has_value());
    EXPECT_EQ(cache.stats().write_errors, 2u);
  }
  // The surviving file holds exactly the pre-failure record — no torn
  // tail (torn_bytes == 0 pins that the truncate-back worked).
  WisdomCache reloaded(8);
  reloaded.open(guard.path, 8);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.stats().torn_bytes, 0u);
  EXPECT_TRUE(reloaded.find(make_key(0)).has_value());
  EXPECT_FALSE(reloaded.find(make_key(1)).has_value());
  // open() re-arms persistence: the degraded flag is per-attachment.
  EXPECT_FALSE(reloaded.stats().degraded_to_memory);
  EXPECT_TRUE(reloaded.put(make_key(3), make_entry(3)).ok());
}

TEST(WisdomCacheCrash, CapacityAppliesOnReloadToo) {
  const PathGuard guard(temp_path("shrinkcap"));
  {
    WisdomCache cache(8);
    cache.open(guard.path, 8);
    for (int i = 0; i < 6; ++i) cache.put(make_key(i), make_entry(i));
  }
  // Reopen with a smaller capacity: only the most recent records survive.
  WisdomCache reloaded(3);
  reloaded.open(guard.path, 3);
  EXPECT_EQ(reloaded.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(reloaded.find(make_key(i)).has_value()) << i;
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_TRUE(reloaded.find(make_key(i)).has_value()) << i;
  }
}

}  // namespace
