// Pillar 2 of the verification subsystem: metamorphic relations for
// linear stencils — superposition, scaling, translation invariance.

#include <gtest/gtest.h>

#include "kernels/runner.hpp"
#include "verify/metamorphic.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

class MetamorphicAllMethods : public ::testing::TestWithParam<Method> {};

TEST_P(MetamorphicAllMethods, RelationsHoldSinglePrecision) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(2);
  const auto kernel =
      make_kernel<float>(GetParam(), coeffs, LaunchConfig{16, 8, 1, 1, 1});
  const verify::VerifyReport report =
      verify::metamorphic_checks(*kernel, {32, 16, 8});
  EXPECT_TRUE(report.pass()) << report.summary();
  // superposition + scaling + translation-x + translation-y.
  EXPECT_EQ(report.checks.size(), 4u);
}

TEST_P(MetamorphicAllMethods, RelationsHoldDoublePrecisionHighOrder) {
  const StencilCoeffs coeffs = StencilCoeffs::random(4, 21);
  const auto kernel =
      make_kernel<double>(GetParam(), coeffs, LaunchConfig{8, 4, 2, 2, 1});
  const verify::VerifyReport report =
      verify::metamorphic_checks(*kernel, {32, 16, 10});
  EXPECT_TRUE(report.pass()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Methods, MetamorphicAllMethods,
                         ::testing::Values(Method::ForwardPlane,
                                           Method::InPlaneClassical,
                                           Method::InPlaneVertical,
                                           Method::InPlaneHorizontal,
                                           Method::InPlaneFullSlice),
                         [](const auto& inst) {
                           std::string name = to_string(inst.param);
                           std::erase(name, '-');  // "full-slice" -> "fullslice"
                           return name;
                         });

TEST(Metamorphic, InvalidConfigIsSkippedNotExecuted) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(1);
  const auto kernel = make_kernel<float>(Method::InPlaneVertical, coeffs,
                                         LaunchConfig{32, 8, 1, 1, 1});
  // 40 is not a multiple of the 32-wide tile: validate() rejects.
  const verify::VerifyReport report =
      verify::metamorphic_checks(*kernel, {40, 16, 8});
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.pass());
  EXPECT_NE(report.checks[0].name.find("skipped"), std::string::npos);
}

// Negative test: superposition_violation is the hook the checks (and the
// fuzzer) stand on — feed it outputs that do NOT satisfy K(a+b) ==
// K(a) + K(b) and it must name the offending site.
TEST(Metamorphic, SuperpositionViolationDetectsTamperedSum) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(1);
  const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, coeffs,
                                         LaunchConfig{16, 8, 1, 1, 1});
  const Extent3 extent{16, 8, 4};
  const auto run = [&](std::uint64_t seed) {
    Grid3<float> in = make_grid_for(*kernel, extent);
    Grid3<float> out = make_grid_for(*kernel, extent);
    verify::fill_verification_field(in, seed);
    run_kernel(*kernel, in, out, gpusim::DeviceSpec::geforce_gtx580());
    return out;
  };
  Grid3<float> out_a = run(1);
  Grid3<float> out_b = run(2);
  const UlpBudget budget = UlpBudget::for_radius(1, sizeof(float));

  // Honest case first: K applied to a+b.
  Grid3<float> in_sum = make_grid_for(*kernel, extent);
  in_sum.fill_with_halo([](int i, int j, int k) {
    return static_cast<float>(verify::verification_field_value(1, i, j, k) +
                              verify::verification_field_value(2, i, j, k));
  });
  Grid3<float> out_sum = make_grid_for(*kernel, extent);
  run_kernel(*kernel, in_sum, out_sum, gpusim::DeviceSpec::geforce_gtx580());
  EXPECT_FALSE(verify::superposition_violation(out_sum, out_a, out_b,
                                               budget.scaled(4.0))
                   .has_value());

  // Tampered: one point of the sum output drifts beyond the budget.
  out_sum.at(3, 2, 1) += 0.5f;
  const auto violation =
      verify::superposition_violation(out_sum, out_a, out_b, budget.scaled(4.0));
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("(3, 2, 1)"), std::string::npos) << *violation;
}

}  // namespace
