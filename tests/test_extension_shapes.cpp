// Shape-regression tests for the extension benches, mirroring
// test_paper_shapes.cpp: if these break, an extension no longer shows the
// physics its bench documents.

#include <gtest/gtest.h>

#include "apps/app_kernel.hpp"
#include "autotune/stochastic.hpp"
#include "autotune/tuner.hpp"
#include "multigpu/multi_gpu.hpp"
#include "temporal/temporal_kernel.hpp"

namespace inplane {
namespace {

using kernels::LaunchConfig;
using kernels::Method;

const Extent3 kGrid{512, 512, 256};

double tuned_single(const gpusim::DeviceSpec& dev, int order) {
  return autotune::exhaustive_tune<float>(Method::InPlaneFullSlice,
                                          StencilCoeffs::diffusion(order / 2), dev,
                                          kGrid)
      .best.timing.mpoints_per_s;
}

double tuned_temporal_updates(const gpusim::DeviceSpec& dev, int order) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  autotune::SearchSpace space;
  space.tb_values = {2};
  double best = 0.0;
  for (const auto& cfg : space.enumerate(dev, kGrid, Method::InPlaneFullSlice,
                                         cs.radius(), sizeof(float), 4)) {
    const temporal::TemporalInPlaneKernel<float> k(cs, cfg);
    // time_temporal_kernel reports point-updates per second (2 per sweep
    // at degree 2), the same unit tuned_single() reports for 1 step.
    const auto t = temporal::time_temporal_kernel(k, dev, kGrid);
    if (t.valid) best = std::max(best, t.mpoints_per_s);
  }
  return best;
}

// Temporal blocking wins clearly at order 2 and loses by order 8 — the
// shared-ring/ghost-zone crossover of bench_temporal_extension.
TEST(ExtensionShapes, TemporalCrossover) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const double gain_o2 = tuned_temporal_updates(dev, 2) / tuned_single(dev, 2);
  const double gain_o8 = tuned_temporal_updates(dev, 8) / tuned_single(dev, 8);
  EXPECT_GT(gain_o2, 1.3);
  EXPECT_LT(gain_o8, 1.0);
  EXPECT_GT(gain_o2, gain_o8);
}

// Multi-GPU scaling: near-linear at order 2 with 4 devices; exchange-bound
// saturation at order 8 (the PCIe wall of bench_multigpu_scaling).
TEST(ExtensionShapes, MultiGpuScalingAndSaturation) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const auto estimate = [&](int order, int n) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const auto cfg = autotune::exhaustive_tune<float>(Method::InPlaneFullSlice, cs,
                                                      dev, kGrid)
                         .best.config;
    multigpu::MultiGpuOptions opt;
    opt.n_devices = n;
    return multigpu::MultiGpuStencil<float>(Method::InPlaneFullSlice, cs, cfg, opt)
        .estimate(dev, kGrid);
  };
  const auto o2 = estimate(2, 4);
  ASSERT_TRUE(o2.valid);
  EXPECT_GT(o2.parallel_efficiency, 0.9);
  const auto o8_2 = estimate(8, 2);
  const auto o8_8 = estimate(8, 8);
  ASSERT_TRUE(o8_2.valid && o8_8.valid);
  // Exchange-bound: adding devices beyond the wall buys (almost) nothing.
  EXPECT_LT(o8_8.mpoints_per_s, o8_2.mpoints_per_s * 2.5);
  EXPECT_LT(o8_8.parallel_efficiency, 0.5);
}

// Stochastic tuning never beats exhaustive but must find a usable point.
TEST(ExtensionShapes, StochasticBounded) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx680();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const double exh = tuned_single(dev, 2);
  autotune::StochasticOptions opt;
  opt.max_evaluations = 20;
  const auto sto =
      autotune::stochastic_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, opt);
  ASSERT_TRUE(sto.found());
  EXPECT_LE(sto.best.timing.mpoints_per_s, exh * 1.0001);
  EXPECT_GE(sto.best.timing.mpoints_per_s, exh * 0.5);
}

// The extra application stencils keep the Fig. 11 ordering logic: the
// coefficient-heavy seismic kernel gains less than the pure wave kernel.
TEST(ExtensionShapes, ExtraAppsOrdering) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  autotune::SearchSpace space;
  const auto tuned_app = [&](const apps::AppFormula& f) {
    const apps::AppKernel<float> nv(f, apps::AppMethod::ForwardPlane,
                                    LaunchConfig::nvstencil_default());
    const double base = apps::time_app_kernel(nv, dev, kGrid).mpoints_per_s;
    double best = 0.0;
    for (const auto& cfg : space.enumerate(dev, kGrid, Method::InPlaneFullSlice,
                                           std::max(f.radius(), 1), sizeof(float),
                                           4)) {
      const apps::AppKernel<float> k(f, apps::AppMethod::InPlaneFullSlice, cfg);
      const auto t = apps::time_app_kernel(k, dev, kGrid);
      if (t.valid) best = std::max(best, t.mpoints_per_s);
    }
    return best / base;
  };
  const double wave_gain = tuned_app(apps::wave());
  const double rtm_gain = tuned_app(apps::seismic_rtm());
  EXPECT_GT(wave_gain, rtm_gain);
  EXPECT_GT(wave_gain, 1.3);
  EXPECT_GT(rtm_gain, 1.0);
}

}  // namespace
}  // namespace inplane
