// Execution governance: cooperative cancellation (deadline / external
// cancel) threaded through the runner, tuners and multi-GPU driver; the
// per-run memory budget that degrades work instead of aborting it; retry
// backoff jitter and its total wall-clock cap; and the shared process
// exit-code mapping (5 = deadline/budget exhaustion).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/tuner.hpp"
#include "core/cancel.hpp"
#include "core/mem_budget.hpp"
#include "core/status.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/fault_injector.hpp"
#include "kernels/runner.hpp"
#include "multigpu/multi_gpu.hpp"

namespace inplane {
namespace {

using gpusim::DeviceSpec;
using gpusim::FaultInjector;
using gpusim::FaultPlan;
using kernels::LaunchConfig;
using kernels::Method;
using kernels::RunOptions;
using kernels::RunReport;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------- CancelToken --

TEST(CancelToken, ExternalCancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // sticky
  EXPECT_EQ(token.status().code, ErrorCode::ResourceExhausted);
}

TEST(CancelToken, CheckCountdownFiresOnTheNthPoll) {
  CancelToken token;
  token.cancel_after_checks(3);
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // sticky after firing
}

TEST(CancelToken, DeadlineFires) {
  CancelToken expired;
  expired.set_deadline_ms(-1.0);  // already in the past
  EXPECT_TRUE(expired.cancelled());
  EXPECT_EQ(expired.status().code, ErrorCode::ResourceExhausted);
  EXPECT_NE(expired.status().context.find("deadline"), std::string::npos);

  CancelToken soon;
  soon.set_deadline_ms(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(soon.cancelled());
}

TEST(CancelToken, CheckCancelledThrowsTypedError) {
  check_cancelled(nullptr);  // null token: never fires
  CancelToken idle;
  check_cancelled(&idle);  // un-fired token: no-op
  CancelToken fired;
  fired.cancel();
  EXPECT_THROW(check_cancelled(&fired), ResourceExhaustedError);
  // The typed throw still carries the Status for generic catch sites.
  try {
    check_cancelled(&fired);
    FAIL() << "expected ResourceExhaustedError";
  } catch (const std::exception& e) {
    EXPECT_EQ(status_of(e).code, ErrorCode::ResourceExhausted);
  }
}

TEST(CancelToken, ParallelForPollsPerItem) {
  // Serial path: the countdown fires before the 5th item runs.
  CancelToken token;
  token.cancel_after_checks(5);
  std::size_t ran = 0;
  ExecPolicy policy{1};
  policy.cancel = &token;
  EXPECT_THROW(parallel_for(policy, 100, [&](std::size_t) { ++ran; }),
               ResourceExhaustedError);
  EXPECT_EQ(ran, 4u);

  // Pooled path: the throw surfaces on the calling thread too.
  CancelToken token2;
  token2.cancel();
  ExecPolicy pooled{4};
  pooled.cancel = &token2;
  EXPECT_THROW(parallel_for(pooled, 100, [](std::size_t) {}),
               ResourceExhaustedError);
}

// ----------------------------------------------------------- exit codes --

TEST(ExitCodes, SharedMappingCoversEveryClass) {
  EXPECT_EQ(exit_code(Status::okay()), 0);
  EXPECT_EQ(exit_code({ErrorCode::InvalidConfig, ""}), 2);
  EXPECT_EQ(exit_code({ErrorCode::TransientFault, ""}), 3);
  EXPECT_EQ(exit_code({ErrorCode::Timeout, ""}), 3);
  EXPECT_EQ(exit_code({ErrorCode::DataCorruption, ""}), 3);
  EXPECT_EQ(exit_code({ErrorCode::DeviceLost, ""}), 3);
  EXPECT_EQ(exit_code({ErrorCode::IoError, ""}), 4);
  EXPECT_EQ(exit_code({ErrorCode::ResourceExhausted, ""}), 5);
  EXPECT_EQ(exit_code({ErrorCode::Internal, ""}), 1);
}

// ------------------------------------------------------------ MemBudget --

TEST(MemBudget, ReservationsAreBoundedAndRaiiReleased) {
  MemBudget budget(100);
  EXPECT_EQ(budget.limit_bytes(), 100u);
  {
    MemReservation first(&budget, 60);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(budget.used_bytes(), 60u);
    MemReservation second(&budget, 50);  // 60 + 50 > 100
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(budget.used_bytes(), 60u);
    EXPECT_EQ(budget.denied(), 1u);
    MemReservation third(&budget, 40);  // exactly fills the budget
    EXPECT_TRUE(third.ok());
    EXPECT_EQ(budget.used_bytes(), 100u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);  // both held reservations returned
}

TEST(MemBudget, ZeroLimitAndNullBudgetAreUnlimited) {
  MemBudget unlimited;  // limit 0
  MemReservation huge(&unlimited, ~std::uint64_t{0});
  EXPECT_TRUE(huge.ok());
  EXPECT_EQ(unlimited.denied(), 0u);
  MemReservation none(nullptr, ~std::uint64_t{0});
  EXPECT_TRUE(none.ok());
}

// ------------------------------------------------------ backoff + jitter --

TEST(Backoff, JitterStaysInBandAndIsDeterministic) {
  kernels::RetryPolicy policy;  // initial 0.5, x2, jitter 0.25
  for (int attempt = 1; attempt <= 4; ++attempt) {
    double base = policy.backoff_initial_ms;
    for (int i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
    const double d = kernels::backoff_delay_ms(policy, attempt, 0.0);
    EXPECT_GE(d, base * (1.0 - policy.backoff_jitter)) << "attempt " << attempt;
    EXPECT_LE(d, base * (1.0 + policy.backoff_jitter)) << "attempt " << attempt;
    // Same plan, same attempt => identical sleep (no global RNG state).
    EXPECT_EQ(d, kernels::backoff_delay_ms(policy, attempt, 0.0));
  }
  EXPECT_EQ(kernels::backoff_delay_ms(policy, 0, 0.0), 0.0);
}

TEST(Backoff, TotalWallClockCapClipsTheTail) {
  kernels::RetryPolicy policy;
  policy.backoff_initial_ms = 100.0;
  policy.backoff_jitter = 0.0;
  policy.backoff_total_cap_ms = 150.0;
  EXPECT_EQ(kernels::backoff_delay_ms(policy, 1, 0.0), 100.0);
  // The second retry wants 200 ms but only 50 ms of cap remains.
  EXPECT_EQ(kernels::backoff_delay_ms(policy, 2, 100.0), 50.0);
  // Cap exhausted (or overshot): no more sleeping, retries run back-to-back.
  EXPECT_EQ(kernels::backoff_delay_ms(policy, 3, 150.0), 0.0);
  EXPECT_EQ(kernels::backoff_delay_ms(policy, 3, 400.0), 0.0);
  // 0 = uncapped.
  policy.backoff_total_cap_ms = 0.0;
  EXPECT_EQ(kernels::backoff_delay_ms(policy, 2, 1e9), 200.0);
}

// ------------------------------------------------------- guarded runner --

constexpr Extent3 kExtent{64, 32, 9};

template <typename T>
Grid3<T> seeded_input(const kernels::IStencilKernel<T>& kernel) {
  Grid3<T> in = kernels::make_grid_for(kernel, kExtent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.1 * i) + 0.05 * j + 0.02 * k * k);
  });
  return in;
}

TEST(GuardedRunner, PreCancelledTokenShortCircuits) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneClassical, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);

  CancelToken token;
  token.cancel();
  RunOptions ro;
  ro.policy.cancel = &token;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  EXPECT_EQ(report.status.code, ErrorCode::ResourceExhausted);
  EXPECT_EQ(report.attempts, 0);  // no attempt was burned
}

// ----------------------------------------------------- tuner governance --

constexpr Extent3 kTuneExtent{512, 512, 256};

TEST(TunerGovernance, DeadlineMidSweepLeavesAResumableJournal) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const std::string path = temp_path("ipt_cancel_resume.journal");
  std::filesystem::remove(path);

  const autotune::TuneResult clean = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, ExecPolicy{});
  ASSERT_TRUE(clean.found());

  // The token fires after a handful of measurement polls, mid-sweep.  The
  // sweep's model-prediction pre-pass polls once per candidate too, so the
  // countdown is offset past it to land between measurements.  The
  // cooperative cancel point sits *between* candidates, so every
  // measurement taken before the firing is journaled and consistent.
  CancelToken token;
  token.cancel_after_checks(static_cast<std::int64_t>(clean.candidates) + 4);
  autotune::TuneOptions opts;
  opts.policy = ExecPolicy{1};
  opts.policy.cancel = &token;
  opts.checkpoint_path = path;
  EXPECT_THROW(static_cast<void>(autotune::exhaustive_tune<float>(
                   Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts)),
               ResourceExhaustedError);

  // Resume without the deadline: the journaled prefix is reused verbatim
  // and the sweep completes to the identical best.
  autotune::TuneOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  const autotune::TuneResult resumed = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, resume_opts);
  ASSERT_TRUE(resumed.found());
  EXPECT_GE(resumed.resumed, 3u);
  EXPECT_LT(resumed.resumed, resumed.candidates);
  EXPECT_EQ(resumed.best.config.to_string(), clean.best.config.to_string());
  EXPECT_EQ(resumed.best.timing.mpoints_per_s, clean.best.timing.mpoints_per_s);
  std::filesystem::remove(path);
}

TEST(TunerGovernance, MemBudgetCapsTheMeasuredSet) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);

  const autotune::TuneResult clean = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, ExecPolicy{});
  ASSERT_TRUE(clean.found());
  ASSERT_GT(clean.candidates, 4u);

  // Budget for roughly three candidates' working sets: the sweep measures
  // the model-ranked prefix and leaves the rest predicted-only.
  MemBudget budget(4u << 20);
  autotune::TuneOptions opts;
  opts.mem_budget = &budget;
  const autotune::TuneResult capped = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts);

  ASSERT_TRUE(capped.found());
  EXPECT_EQ(capped.candidates, clean.candidates);
  EXPECT_LT(capped.executed, capped.candidates);
  EXPECT_GE(capped.executed, 1u);
  // The budget measures the model-ranked prefix: no pruned candidate may
  // out-predict a measured one.
  double min_measured_pred = 1e300;
  double max_pruned_pred = -1.0;
  std::size_t predicted_only = 0;
  for (const autotune::TuneEntry& e : capped.entries) {
    if (e.executed) {
      min_measured_pred = std::min(min_measured_pred, e.model_mpoints);
    } else {
      ++predicted_only;
      EXPECT_FALSE(e.timing.valid);
      max_pruned_pred = std::max(max_pruned_pred, e.model_mpoints);
    }
  }
  EXPECT_EQ(predicted_only, capped.candidates - capped.executed);
  EXPECT_GE(min_measured_pred, max_pruned_pred);

  // Degradation floor: even a 1-byte budget measures one candidate rather
  // than aborting the sweep.
  MemBudget tiny(1);
  autotune::TuneOptions tiny_opts;
  tiny_opts.mem_budget = &tiny;
  const autotune::TuneResult floor = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, tiny_opts);
  ASSERT_TRUE(floor.found());
  EXPECT_EQ(floor.executed, 1u);
  EXPECT_GE(tiny.denied(), 1u);
}

TEST(TunerGovernance, AbftContainsMeasurementCorruption) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);

  const autotune::TuneResult clean = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, ExecPolicy{});
  ASSERT_TRUE(clean.found());

  // Every candidate's measurement is hit by a bit flip.  With ABFT the
  // corruption is detected and contained online: no retries burned, no
  // quarantine, and the ranking matches the fault-free sweep.
  FaultInjector injector(FaultPlan::parse("seed=13; bitflip:cp=1,bit=30"));
  autotune::TuneOptions opts;
  opts.faults = &injector;
  opts.abft = true;
  const autotune::TuneResult contained = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts);

  ASSERT_TRUE(contained.found());
  EXPECT_EQ(contained.quarantined, 0u);
  EXPECT_EQ(contained.sdc_events, contained.executed);
  EXPECT_EQ(contained.faulted, contained.executed);
  EXPECT_EQ(contained.best.config.to_string(), clean.best.config.to_string());
  EXPECT_EQ(contained.best.timing.mpoints_per_s, clean.best.timing.mpoints_per_s);
  for (const autotune::TuneEntry& e : contained.entries) {
    if (!e.executed) continue;
    EXPECT_EQ(e.attempts, 1);
    EXPECT_EQ(e.sdc_events, 1);
  }

  // Without ABFT the same plan exhausts every candidate's retries.
  FaultInjector injector2(FaultPlan::parse("seed=13; bitflip:cp=1,bit=30"));
  autotune::TuneOptions blind;
  blind.faults = &injector2;
  const autotune::TuneResult quarantined = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, blind);
  EXPECT_FALSE(quarantined.found());
  EXPECT_EQ(quarantined.quarantined, quarantined.candidates);
  EXPECT_EQ(quarantined.sdc_events, 0u);
}

// ----------------------------------------- checkpoint journal (IPTJ3) --

TEST(CheckpointJournal, SdcEventsRoundTripThroughATornTail) {
  const std::string path = temp_path("ipt_sdc_roundtrip.journal");
  std::filesystem::remove(path);

  autotune::CheckpointKey key;
  key.method = "inplane_full_slice";
  key.device = "gtx580";
  key.extent = kTuneExtent;
  key.elem_size = 4;
  key.kind = "exhaustive";

  autotune::TuneEntry entry;
  entry.config = LaunchConfig{32, 4, 1, 2, 1};
  entry.timing.valid = true;
  entry.timing.mpoints_per_s = 1234.5;
  entry.executed = true;
  entry.attempts = 1;
  entry.sdc_events = 7;
  {
    autotune::CheckpointJournal journal;
    journal.open(path, key);
    journal.append(entry);
  }
  {
    // An SDC record with a torn write after it: the tail is truncated, the
    // record (including its contained-corruption count) survives.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x07torn-sdc-tail", 14);
  }
  autotune::CheckpointJournal reopened;
  reopened.open(path, key);
  ASSERT_EQ(reopened.loaded().size(), 1u);
  const auto found = reopened.find(entry.config);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->sdc_events, 7);
  EXPECT_EQ(found->attempts, 1);
  EXPECT_TRUE(found->executed);
  EXPECT_EQ(found->timing.mpoints_per_s, 1234.5);
  std::filesystem::remove(path);
}

// -------------------------------------------------- multi-GPU governance --

TEST(MultiGpuGovernance, PreCancelledTokenStopsBeforeTheFirstSlab) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  CancelToken token;
  token.cancel();
  multigpu::MultiGpuOptions opts;
  opts.n_devices = 2;
  opts.cancel = &token;
  multigpu::MultiGpuStencil<float> sim(Method::InPlaneClassical, cs,
                                       LaunchConfig{32, 4, 1, 2, 1}, opts);
  Grid3<float> a({64, 32, 8}, 1);
  Grid3<float> b({64, 32, 8}, 1);
  a.fill(1.0f);
  EXPECT_THROW(sim.run(a, b, dev, 2), ResourceExhaustedError);
}

TEST(MultiGpuGovernance, TightBudgetChunksSlabsBitIdentically) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const LaunchConfig cfg{32, 4, 1, 2, 1};
  const Extent3 extent{64, 32, 8};

  auto make_grid = [&] {
    Grid3<float> g(extent, 1);
    g.fill_with_halo([](int i, int j, int k) {
      return static_cast<float>(std::sin(0.3 * i) + 0.1 * j - 0.05 * k);
    });
    return g;
  };

  multigpu::MultiGpuOptions plain_opts;
  plain_opts.n_devices = 4;
  multigpu::MultiGpuStencil<float> plain(Method::InPlaneClassical, cs, cfg,
                                         plain_opts);
  Grid3<float> a_plain = make_grid();
  Grid3<float> b_plain = make_grid();
  multigpu::MultiGpuRunStats plain_stats;
  plain.run(a_plain, b_plain, dev, 3, &plain_stats);
  EXPECT_EQ(plain_stats.slab_buffer_pairs, 4);

  // A 1-byte budget forces the slab staging down to a single buffer pair
  // cycled across all four devices — slower, but numerically untouched.
  MemBudget budget(1);
  multigpu::MultiGpuOptions opts;
  opts.n_devices = 4;
  opts.mem_budget = &budget;
  multigpu::MultiGpuStencil<float> sim(Method::InPlaneClassical, cs, cfg, opts);
  Grid3<float> a = make_grid();
  Grid3<float> b = make_grid();
  multigpu::MultiGpuRunStats stats;
  sim.run(a, b, dev, 3, &stats);
  EXPECT_EQ(stats.slab_buffer_pairs, 1);
  EXPECT_GE(budget.denied(), 1u);
  EXPECT_EQ(std::memcmp(a.raw(), a_plain.raw(), a.allocated() * sizeof(float)), 0);
}

}  // namespace
}  // namespace inplane
