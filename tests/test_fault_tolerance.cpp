// The fault-tolerant execution layer: deterministic seeded injection,
// the watchdog and retry/verify discipline of the hardened runner, tuner
// quarantine + checkpoint/resume, and multi-GPU re-sharding.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/tuner.hpp"
#include "core/grid_io.hpp"
#include "core/status.hpp"
#include "gpusim/fault_injector.hpp"
#include "kernels/runner.hpp"
#include "metrics/metrics.hpp"
#include "multigpu/multi_gpu.hpp"

namespace inplane {
namespace {

using gpusim::DeviceSpec;
using gpusim::ExecMode;
using gpusim::FaultEvent;
using gpusim::FaultInjector;
using gpusim::FaultKind;
using gpusim::FaultPlan;
using gpusim::FaultSpace;
using kernels::LaunchConfig;
using kernels::Method;
using kernels::RunOptions;
using kernels::RunReport;

// ------------------------------------------------------------ plan parsing --

TEST(FaultPlan, ParsesSeedAndRules) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7; transient:cp=0.5,attempt=0; bitflip:p=0.001,bit=30,space=global; "
      "hang:block=2,event=100; devicelost:device=1,step=3");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::TransientFault);
  EXPECT_DOUBLE_EQ(plan.rules[0].candidate_probability, 0.5);
  EXPECT_EQ(plan.rules[0].attempt, 0);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::BitFlip);
  EXPECT_EQ(plan.rules[1].bit, 30);
  EXPECT_EQ(plan.rules[1].space, FaultSpace::Global);
  EXPECT_EQ(plan.rules[2].kind, FaultKind::Hang);
  EXPECT_EQ(plan.rules[2].block, 2);
  EXPECT_EQ(plan.rules[2].event, 100);
  EXPECT_EQ(plan.rules[3].kind, FaultKind::DeviceLoss);
  EXPECT_EQ(plan.rules[3].device, 1);
  EXPECT_EQ(plan.rules[3].step, 3);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("wibble:p=0.1"), InvalidConfigError);
  EXPECT_THROW(FaultPlan::parse("transient:p=abc"), InvalidConfigError);
  EXPECT_THROW(FaultPlan::parse("transient:frob=1"), InvalidConfigError);
  EXPECT_THROW(FaultPlan::parse("bitflip:space=sideways"), InvalidConfigError);
  EXPECT_THROW(FaultPlan::parse("transient p=1"), InvalidConfigError);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

// ----------------------------------------------------------- test fixture --

constexpr Extent3 kExtent{64, 32, 9};

template <typename T>
Grid3<T> seeded_input(const kernels::IStencilKernel<T>& kernel) {
  Grid3<T> in = kernels::make_grid_for(kernel, kExtent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.1 * i) + 0.05 * j + 0.02 * k * k);
  });
  return in;
}

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.attempt == b.attempt && a.block == b.block &&
         a.event == b.event && a.lane == b.lane && a.vaddr == b.vaddr &&
         a.bit == b.bit && a.candidate == b.candidate && a.device == b.device &&
         a.step == b.step;
}

// -------------------------------------------------- injection determinism --

TEST(FaultInjection, SitesAndOutputAreThreadCountInvariant) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel =
      kernels::make_kernel<float>(Method::InPlaneClassical, cs, LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);
  const FaultPlan plan = FaultPlan::parse("seed=42; bitflip:p=0.002,bit=12");

  auto run_with_threads = [&](int threads, FaultInjector& injector) {
    Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
    out.fill(-1.0f);
    RunOptions ro;
    ro.faults = &injector;
    ro.policy = ExecPolicy{threads};
    ro.retry.max_attempts = 1;   // keep the corrupted first attempt
    ro.retry.verify = false;
    const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
    EXPECT_TRUE(report.status.ok()) << report.status.to_string();
    return out;
  };

  FaultInjector serial_inj(plan);
  const Grid3<float> serial = run_with_threads(1, serial_inj);
  const std::vector<FaultEvent> serial_events = serial_inj.events();
  ASSERT_FALSE(serial_events.empty()) << "plan injected nothing — test is vacuous";

  for (int threads : {2, 4}) {
    FaultInjector par_inj(plan);
    const Grid3<float> par = run_with_threads(threads, par_inj);
    const std::vector<FaultEvent> par_events = par_inj.events();
    ASSERT_EQ(serial_events.size(), par_events.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial_events.size(); ++i) {
      EXPECT_TRUE(same_event(serial_events[i], par_events[i]))
          << "threads=" << threads << " event " << i;
    }
    EXPECT_EQ(std::memcmp(serial.raw(), par.raw(), serial.allocated() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

// ----------------------------------------------------------- watchdog --

TEST(GuardedRunner, HangTripsTheWatchdog) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneClassical, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);

  FaultInjector injector(FaultPlan::parse("hang:block=0,event=40"));
  RunOptions ro;
  ro.faults = &injector;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  EXPECT_EQ(report.status.code, ErrorCode::Timeout);
  EXPECT_EQ(report.attempts, 1);  // timeouts are not retryable
  EXPECT_NE(report.status.context.find("watchdog"), std::string::npos);
}

TEST(GuardedRunner, StepBudgetBoundsEveryBlock) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneClassical, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);

  RunOptions ro;
  ro.step_budget = 5;  // absurdly tight: every block trips it
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  EXPECT_EQ(report.status.code, ErrorCode::Timeout);
  EXPECT_EQ(report.step_budget, 5u);

  // The automatic budget must never fire on a healthy run.
  RunOptions clean;
  Grid3<float> out2 = kernels::make_grid_for(*kernel, kExtent);
  const RunReport ok = kernels::run_kernel_guarded(*kernel, in, out2, dev, clean);
  EXPECT_TRUE(ok.status.ok()) << ok.status.to_string();
  EXPECT_GT(ok.step_budget, 0u);
}

// ------------------------------------------------------- retry + verify --

TEST(GuardedRunner, TransientFaultRetriesAndSucceeds) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneClassical, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);

  // Every global load fails on attempt 0; attempt 1 runs clean.
  FaultInjector injector(FaultPlan::parse("transient:p=1,attempt=0,space=global"));
  RunOptions ro;
  ro.faults = &injector;
  ro.retry.backoff_initial_ms = 0.01;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  EXPECT_TRUE(report.status.ok()) << report.status.to_string();
  EXPECT_EQ(report.attempts, 2);
  EXPECT_TRUE(report.verified);

  // The retried output matches a clean run bitwise.
  Grid3<float> clean = kernels::make_grid_for(*kernel, kExtent);
  kernels::run_kernel(*kernel, in, clean, dev);
  EXPECT_EQ(std::memcmp(out.raw(), clean.raw(), out.allocated() * sizeof(float)), 0);
}

TEST(GuardedRunner, VerificationCatchesSilentBitFlips) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneClassical, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);

  // Bit 30 (a float exponent bit) flips on some attempt-0 loads.  The run
  // "succeeds" — only reference verification notices.
  const FaultPlan plan = FaultPlan::parse("seed=9; bitflip:p=0.005,bit=30,attempt=0");

  // Without verification the corruption is silent.
  FaultInjector blind_inj(plan);
  Grid3<float> blind = kernels::make_grid_for(*kernel, kExtent);
  RunOptions blind_ro;
  blind_ro.faults = &blind_inj;
  blind_ro.retry.verify = false;
  const RunReport blind_report =
      kernels::run_kernel_guarded(*kernel, in, blind, dev, blind_ro);
  EXPECT_TRUE(blind_report.status.ok());
  EXPECT_EQ(blind_report.attempts, 1);
  ASSERT_GT(blind_inj.event_count(), 0u);

  Grid3<float> clean = kernels::make_grid_for(*kernel, kExtent);
  kernels::run_kernel(*kernel, in, clean, dev);
  EXPECT_NE(std::memcmp(blind.raw(), clean.raw(), blind.allocated() * sizeof(float)),
            0)
      << "bit flips should have corrupted the unverified output";

  // With verification the corrupt attempt is rejected and retried clean.
  FaultInjector inj(plan);
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
  RunOptions ro;
  ro.faults = &inj;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  EXPECT_TRUE(report.status.ok()) << report.status.to_string();
  EXPECT_EQ(report.attempts, 2);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(std::memcmp(out.raw(), clean.raw(), out.allocated() * sizeof(float)), 0);
}

TEST(GuardedRunner, CleanRunMatchesPlainRunner) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneFullSlice, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);

  Grid3<float> plain = kernels::make_grid_for(*kernel, kExtent);
  const auto plain_stats =
      kernels::run_kernel(*kernel, in, plain, dev, ExecMode::Both);

  Grid3<float> guarded = kernels::make_grid_for(*kernel, kExtent);
  RunOptions ro;
  ro.mode = ExecMode::Both;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, guarded, dev, ro);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.attempts, 1);
  EXPECT_FALSE(report.verified);  // nothing suspicious happened
  EXPECT_EQ(report.stats.load_instrs, plain_stats.load_instrs);
  EXPECT_EQ(report.stats.flops, plain_stats.flops);
  EXPECT_EQ(std::memcmp(plain.raw(), guarded.raw(), plain.allocated() * sizeof(float)),
            0);
}

TEST(GuardedRunner, InvalidConfigurationIsReportedNotThrown) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneClassical, cs,
                                                  LaunchConfig{32, 4, 1, 2, 1});
  const Grid3<float> in = seeded_input(*kernel);
  Grid3<float> narrow(kExtent, /*halo=*/1);  // narrower than radius 2
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, narrow, dev, {});
  EXPECT_EQ(report.status.code, ErrorCode::InvalidConfig);
}

// ------------------------------------------------------ tuner robustness --

constexpr Extent3 kTuneExtent{512, 512, 256};

TEST(TunerFaults, RecoverableFaultsYieldTheFaultFreeBest) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);

  const autotune::TuneResult clean = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, ExecPolicy{});

  // Half the candidates fault on their first measurement attempt; the
  // retry (attempt pinned to 0, so redraws never re-fire) succeeds.
  FaultInjector injector(FaultPlan::parse("seed=21; transient:cp=0.5,attempt=0"));
  autotune::TuneOptions opts;
  opts.faults = &injector;
  const autotune::TuneResult faulted = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts);

  ASSERT_TRUE(clean.found() && faulted.found());
  EXPECT_GT(faulted.faulted, 0u);
  EXPECT_EQ(faulted.quarantined, 0u);
  EXPECT_EQ(faulted.best.config.to_string(), clean.best.config.to_string());
  EXPECT_EQ(faulted.best.timing.mpoints_per_s, clean.best.timing.mpoints_per_s);
  EXPECT_EQ(faulted.candidates, clean.candidates);
  EXPECT_EQ(faulted.executed, clean.executed);

  // Same contract for the model-guided tuner.
  FaultInjector injector2(FaultPlan::parse("seed=21; transient:cp=0.5,attempt=0"));
  autotune::TuneOptions opts2;
  opts2.faults = &injector2;
  const autotune::TuneResult mod_clean = autotune::model_guided_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, 0.1, {}, ExecPolicy{});
  const autotune::TuneResult mod_faulted = autotune::model_guided_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, 0.1, {}, opts2);
  ASSERT_TRUE(mod_clean.found() && mod_faulted.found());
  EXPECT_EQ(mod_faulted.best.config.to_string(), mod_clean.best.config.to_string());
  EXPECT_EQ(mod_faulted.quarantined, 0u);
}

TEST(TunerFaults, PersistentFaultQuarantinesTheCandidate) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);

  // Candidate #5 faults on every attempt: it must be quarantined with its
  // reason recorded, and the sweep degrades to best-of-survivors.
  FaultInjector injector(FaultPlan::parse("transient:candidate=5"));
  autotune::TuneOptions opts;
  opts.max_attempts = 3;
  opts.faults = &injector;
  const autotune::TuneResult result = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts);

  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.quarantined, 1u);
  ASSERT_EQ(result.quarantine.size(), 1u);
  EXPECT_EQ(result.quarantine[0].reason.code, ErrorCode::TransientFault);
  EXPECT_EQ(result.quarantine[0].attempts, 3);
  EXPECT_EQ(result.executed, result.candidates - 1);

  // Non-retryable faults are quarantined without burning retries.
  FaultInjector injector2(FaultPlan::parse("devicelost:candidate=3"));
  autotune::TuneOptions opts2;
  opts2.faults = &injector2;
  const autotune::TuneResult result2 = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts2);
  ASSERT_TRUE(result2.found());
  ASSERT_EQ(result2.quarantine.size(), 1u);
  EXPECT_EQ(result2.quarantine[0].reason.code, ErrorCode::DeviceLost);
  EXPECT_EQ(result2.quarantine[0].attempts, 1);
}

TEST(TunerFaults, QuarantineIsThreadCountInvariant) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const FaultPlan plan = FaultPlan::parse("seed=77; transient:cp=0.2");

  auto sweep = [&](int threads) {
    FaultInjector injector(plan);
    autotune::TuneOptions opts;
    opts.policy = ExecPolicy{threads};
    opts.faults = &injector;
    return autotune::exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                            kTuneExtent, {}, opts);
  };
  const autotune::TuneResult serial = sweep(1);
  const autotune::TuneResult par = sweep(4);
  EXPECT_EQ(serial.best.config.to_string(), par.best.config.to_string());
  EXPECT_EQ(serial.quarantined, par.quarantined);
  EXPECT_EQ(serial.faulted, par.faulted);
  ASSERT_EQ(serial.quarantine.size(), par.quarantine.size());
  for (std::size_t i = 0; i < serial.quarantine.size(); ++i) {
    EXPECT_EQ(serial.quarantine[i].config.to_string(),
              par.quarantine[i].config.to_string());
    EXPECT_EQ(serial.quarantine[i].reason.code, par.quarantine[i].reason.code);
  }
}

// -------------------------------------------------- checkpoint / resume --

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, ResumeSkipsEveryMeasuredCandidate) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const std::string path = temp_path("ipt_resume_full.journal");
  std::filesystem::remove(path);

  autotune::TuneOptions opts;
  opts.checkpoint_path = path;
  const autotune::TuneResult first = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts);
  ASSERT_TRUE(first.found());
  EXPECT_EQ(first.resumed, 0u);

  // abort_after=1 would throw on the first *fresh* measurement — so a
  // clean completion proves the resumed sweep re-measured zero candidates.
  autotune::TuneOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  resume_opts.abort_after = 1;
  const autotune::TuneResult second = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, resume_opts);
  ASSERT_TRUE(second.found());
  EXPECT_EQ(second.resumed, second.candidates);
  EXPECT_EQ(second.best.config.to_string(), first.best.config.to_string());
  EXPECT_EQ(second.best.timing.mpoints_per_s, first.best.timing.mpoints_per_s);
  EXPECT_EQ(second.best.timing.seconds, first.best.timing.seconds);
  std::filesystem::remove(path);
}

TEST(Checkpoint, KilledSweepResumesToTheIdenticalBest) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const std::string path = temp_path("ipt_resume_crash.journal");
  std::filesystem::remove(path);

  const autotune::TuneResult clean = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, ExecPolicy{});

  // Simulated kill: the sweep dies after 3 journaled measurements.
  autotune::TuneOptions crash_opts;
  crash_opts.checkpoint_path = path;
  crash_opts.abort_after = 3;
  EXPECT_THROW(static_cast<void>(autotune::exhaustive_tune<float>(
                   Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, crash_opts)),
               std::runtime_error);

  autotune::TuneOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  const autotune::TuneResult resumed = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, resume_opts);
  ASSERT_TRUE(resumed.found());
  EXPECT_GE(resumed.resumed, 3u);
  EXPECT_EQ(resumed.best.config.to_string(), clean.best.config.to_string());
  EXPECT_EQ(resumed.best.timing.mpoints_per_s, clean.best.timing.mpoints_per_s);
  EXPECT_EQ(resumed.candidates, clean.candidates);
  std::filesystem::remove(path);
}

TEST(Checkpoint, TornTailIsTruncatedCleanly) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const std::string path = temp_path("ipt_torn_tail.journal");
  std::filesystem::remove(path);

  autotune::TuneOptions opts;
  opts.checkpoint_path = path;
  const autotune::TuneResult first = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, opts);
  ASSERT_TRUE(first.found());

  // A torn write: garbage after the last good record.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x13garbage-torn-write", 19);
  }
  autotune::TuneOptions resume_opts;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  resume_opts.abort_after = 1;  // throws if anything had to be re-measured
  const autotune::TuneResult resumed = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, resume_opts);
  EXPECT_EQ(resumed.resumed, resumed.candidates);
  EXPECT_EQ(resumed.best.config.to_string(), first.best.config.to_string());

  // A record chopped mid-payload: only that record is lost.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  autotune::TuneOptions chopped_opts;
  chopped_opts.checkpoint_path = path;
  chopped_opts.resume = true;
  const autotune::TuneResult chopped = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, kTuneExtent, {}, chopped_opts);
  EXPECT_EQ(chopped.resumed, chopped.candidates - 1);
  EXPECT_EQ(chopped.best.config.to_string(), first.best.config.to_string());
  std::filesystem::remove(path);
}

TEST(Checkpoint, FingerprintMismatchDiscardsTheJournal) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const std::string path = temp_path("ipt_fingerprint.journal");
  std::filesystem::remove(path);

  autotune::TuneOptions opts;
  opts.checkpoint_path = path;
  ASSERT_TRUE(autotune::exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                               kTuneExtent, {}, opts)
                  .found());

  // Same path, different extent: the stored journal describes a different
  // sweep and must not be resumed from.
  autotune::TuneOptions other;
  other.checkpoint_path = path;
  other.resume = true;
  other.abort_after = 1;  // fires because nothing can be resumed
  const Extent3 other_extent{256, 256, 128};
  EXPECT_THROW(static_cast<void>(autotune::exhaustive_tune<float>(
                   Method::InPlaneFullSlice, cs, dev, other_extent, {}, other)),
               std::runtime_error);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".orphan");
}

TEST(Checkpoint, FingerprintMismatchPreservesOrphanAndCountsDiscard) {
  const std::string path = temp_path("ipt_orphan.journal");
  const std::string orphan = path + ".orphan";
  std::filesystem::remove(path);
  std::filesystem::remove(orphan);

  autotune::CheckpointKey key;
  key.method = "full-slice";
  key.device = "GeForce GTX580";
  key.extent = {64, 32, 8};
  key.elem_size = 4;
  key.kind = "exhaustive";

  autotune::TuneEntry measured;
  measured.config = {32, 2, 1, 1, 1};
  measured.executed = true;
  measured.timing.valid = true;
  measured.timing.mpoints_per_s = 123.0;
  {
    autotune::CheckpointJournal j;
    j.open(path, key);
    j.append(measured);
  }

  metrics::set_enabled(true);
  const auto discards = [] {
    for (const auto& e : metrics::Registry::global().snapshot()) {
      if (e.name == "autotune.checkpoint.fingerprint_discards") return e.value;
    }
    return 0.0;
  };
  const double before = discards();

  // Opening the same path for a *different* sweep must not destroy the
  // old progress: it moves aside as <path>.orphan and a fresh journal
  // takes its place.
  autotune::CheckpointKey other = key;
  other.kind = "model";
  {
    autotune::CheckpointJournal j;
    j.open(path, other);
    EXPECT_TRUE(j.loaded().empty());
  }
  EXPECT_EQ(discards() - before, 1.0);
  metrics::set_enabled(false);

  // The orphan is a plain IPTJ3 journal, still resumable under its key.
  ASSERT_TRUE(std::filesystem::exists(orphan));
  const autotune::JournalContents contents = autotune::read_journal(orphan, key);
  EXPECT_TRUE(contents.fingerprint_match);
  ASSERT_EQ(contents.entries.size(), 1u);
  EXPECT_EQ(contents.entries[0].config.tx, 32);
  std::filesystem::remove(path);
  std::filesystem::remove(orphan);
}

TEST(Checkpoint, SurvivesCrashBetweenHeaderWriteAndRename) {
  // Simulated torn rename: the process died after writing the temp
  // header but before the atomic rename — a stray <path>.tmp exists and
  // the journal does not.  open() must initialise cleanly regardless.
  const std::string path = temp_path("ipt_torn_rename.journal");
  std::filesystem::remove(path);
  autotune::CheckpointKey key;
  key.method = "full-slice";
  key.device = "GeForce GTX580";
  key.extent = {64, 32, 8};
  key.elem_size = 4;
  key.kind = "exhaustive";
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "IPTJ";  // half-written header
  }
  autotune::TuneEntry measured;
  measured.config = {16, 4, 1, 1, 1};
  measured.executed = true;
  measured.timing.valid = true;
  measured.timing.mpoints_per_s = 55.0;
  {
    autotune::CheckpointJournal j;
    j.open(path, key);
    EXPECT_TRUE(j.loaded().empty());
    j.append(measured);
  }
  // A half-written header at the *journal* path itself (rename landed,
  // fsync did not, power cut) is equally recoverable: not a valid
  // header, so a fresh journal replaces it.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn << "IPT";
  }
  {
    autotune::CheckpointJournal j;
    j.open(path, key);
    EXPECT_TRUE(j.loaded().empty());
    j.append(measured);
  }
  {
    autotune::CheckpointJournal j;
    j.open(path, key);
    EXPECT_EQ(j.loaded().size(), 1u);
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- grid I/O --

TEST(GridIo, TruncatedFileReportsByteOffset) {
  const std::string path = temp_path("ipt_truncated.ipg");
  Grid3<float> grid({16, 8, 4}, 2);
  grid.fill_with_halo(
      [](int i, int j, int k) { return static_cast<float>(i + 10 * j + 100 * k); });
  save_grid(grid, path);

  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 64);
  try {
    static_cast<void>(load_grid<float>(path));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.status().code, ErrorCode::IoError);
    EXPECT_EQ(e.byte_offset(), static_cast<long long>(full) - 64);
    EXPECT_NE(std::string(e.what()).find("truncated data"), std::string::npos);
  }

  // Chopped inside the header: offset pinpoints the short field.
  std::filesystem::resize_file(path, 20);
  try {
    static_cast<void>(load_grid<float>(path));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.byte_offset(), 20);
    EXPECT_NE(std::string(e.what()).find("truncated header"), std::string::npos);
  }

  // Legacy catch sites (std::runtime_error) still work.
  EXPECT_THROW(static_cast<void>(load_grid<float>(path)), std::runtime_error);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ multi-GPU --

TEST(MultiGpuFaults, LostDeviceIsReshardedOntoSurvivors) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const LaunchConfig cfg{32, 4, 1, 2, 1};
  const Extent3 extent{64, 32, 8};

  auto make_pair = [&] {
    Grid3<float> g(extent, 1);
    g.fill_with_halo([](int i, int j, int k) {
      return static_cast<float>(std::sin(0.3 * i) + 0.1 * j - 0.05 * k);
    });
    return g;
  };

  // Fault-free reference run on 2 devices.
  multigpu::MultiGpuOptions clean_opts;
  clean_opts.n_devices = 2;
  multigpu::MultiGpuStencil<float> clean_sim(Method::InPlaneClassical, cs, cfg,
                                             clean_opts);
  Grid3<float> a_clean = make_pair();
  Grid3<float> b_clean = make_pair();
  clean_sim.run(a_clean, b_clean, dev, 3);

  // Device 1 dies at sweep 1; its slabs move to device 0.
  FaultInjector injector(FaultPlan::parse("devicelost:device=1,step=1"));
  multigpu::MultiGpuOptions opts;
  opts.n_devices = 2;
  opts.faults = &injector;
  multigpu::MultiGpuStencil<float> sim(Method::InPlaneClassical, cs, cfg, opts);
  Grid3<float> a = make_pair();
  Grid3<float> b = make_pair();
  multigpu::MultiGpuRunStats stats;
  sim.run(a, b, dev, 3, &stats);

  EXPECT_EQ(stats.devices_lost, 1);
  ASSERT_EQ(stats.lost_devices.size(), 1u);
  EXPECT_EQ(stats.lost_devices[0], 1);
  EXPECT_TRUE(injector.is_device_lost(1));
  EXPECT_FALSE(injector.is_device_lost(0));

  // The slab partition never changed, so the numerics are identical.
  EXPECT_EQ(
      std::memcmp(a.raw(), a_clean.raw(), a.allocated() * sizeof(float)), 0);
}

TEST(MultiGpuFaults, AllDevicesLostRaisesDeviceLost) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const LaunchConfig cfg{32, 4, 1, 2, 1};
  const Extent3 extent{64, 32, 8};

  FaultInjector injector(
      FaultPlan::parse("devicelost:device=0; devicelost:device=1"));
  multigpu::MultiGpuOptions opts;
  opts.n_devices = 2;
  opts.faults = &injector;
  multigpu::MultiGpuStencil<float> sim(Method::InPlaneClassical, cs, cfg, opts);
  Grid3<float> a(extent, 1);
  Grid3<float> b(extent, 1);
  a.fill(1.0f);
  b.fill(0.0f);
  EXPECT_THROW(sim.run(a, b, dev, 2), DeviceLostError);
}

}  // namespace
}  // namespace inplane
