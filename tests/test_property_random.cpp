// Randomised property tests: the heavy-duty correctness net.
//  * random linear multi-grid formulas through the AppKernel framework vs
//    the generic CPU reference (both loading methods);
//  * the warp coalescer against a brute-force segment-set model;
//  * shared-memory bank conflicts against a brute-force bank histogram;
//  * the iterative driver with simulated kernels over multiple timesteps.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "apps/app_kernel.hpp"
#include "core/grid_compare.hpp"
#include "core/iteration.hpp"
#include "core/reference.hpp"
#include "core/ulp_compare.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/shared_memory.hpp"
#include "kernels/runner.hpp"

namespace inplane {
namespace {

using kernels::LaunchConfig;
using kernels::Method;

// --- Random formulas -----------------------------------------------------------

apps::AppFormula random_formula(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> n_in_dist(1, 4);
  std::uniform_int_distribution<int> n_out_dist(1, 2);
  std::uniform_int_distribution<int> n_terms_dist(2, 10);
  std::uniform_int_distribution<int> off_dist(-2, 2);
  std::uniform_real_distribution<double> coeff_dist(-1.0, 1.0);
  const int n_in = n_in_dist(rng);
  const int n_out = n_out_dist(rng);
  std::uniform_int_distribution<int> grid_dist(0, n_in - 1);
  std::uniform_int_distribution<int> out_dist(0, n_out - 1);
  std::uniform_int_distribution<int> kind_dist(0, 3);

  std::vector<apps::Term> terms;
  const int n_terms = n_terms_dist(rng);
  for (int t = 0; t < n_terms; ++t) {
    apps::Term term;
    term.out = out_dist(rng);
    term.grid = grid_dist(rng);
    term.coeff = coeff_dist(rng);
    switch (kind_dist(rng)) {
      case 0:  // xy term
        term.di = off_dist(rng);
        term.dj = off_dist(rng);
        break;
      case 1:  // z term (centre column by construction)
        term.dk = off_dist(rng);
        break;
      case 2:  // centre term with a varying coefficient
        term.coeff_grid = grid_dist(rng);
        break;
      default:  // backward z term with varying coefficient (dk <= 0 rule)
        term.dk = -std::abs(off_dist(rng));
        term.coeff_grid = grid_dist(rng);
        break;
    }
    terms.push_back(term);
  }
  return apps::AppFormula("random", n_in, n_out, std::move(terms));
}

// Satellite coverage: the random net must also exercise vectorised loads
// (vec 2/4) and register tiling (rx*ry > 1), not only the scalar 1x1 path.
// Every pool entry tiles the {32, 16, *} property extents evenly.
LaunchConfig random_config(std::mt19937_64& rng, std::size_t elem_size) {
  static const LaunchConfig pool[] = {
      {16, 2, 1, 2, 2}, {8, 2, 2, 2, 2},  {8, 4, 4, 1, 1}, {16, 2, 2, 4, 4},
      {32, 4, 1, 2, 4}, {8, 2, 4, 2, 1},  {16, 4, 1, 1, 4}, {8, 4, 2, 2, 2},
  };
  std::uniform_int_distribution<std::size_t> pick(0, std::size(pool) - 1);
  LaunchConfig cfg = pool[pick(rng)];
  if (elem_size == 8 && cfg.vec == 4) cfg.vec = 2;  // double4 loads exceed 16 bytes
  return cfg;
}

class RandomFormula : public testing::TestWithParam<int> {};

TEST_P(RandomFormula, BothMethodsMatchReference) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const apps::AppFormula formula = random_formula(rng);
  const Extent3 extent{32, 16, 10};
  const int halo = std::max(formula.radius(), 1);
  const LaunchConfig cfg = random_config(rng, sizeof(double));

  for (apps::AppMethod method :
       {apps::AppMethod::ForwardPlane, apps::AppMethod::InPlaneFullSlice}) {
    const apps::AppKernel<double> kernel(formula, method, cfg);
    std::vector<Grid3<double>> inputs = apps::make_input_grids_for(kernel, extent);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    for (auto& g : inputs) {
      std::mt19937_64 grng(rng());
      g.fill_with_halo([&](int, int, int) { return val(grng); });
    }
    std::vector<Grid3<double>> outputs = apps::make_output_grids_for(kernel, extent);
    std::vector<const Grid3<double>*> in_ptrs;
    std::vector<Grid3<double>*> out_ptrs;
    for (auto& g : inputs) in_ptrs.push_back(&g);
    for (auto& g : outputs) out_ptrs.push_back(&g);
    apps::run_app_kernel<double>(kernel, in_ptrs, out_ptrs,
                                 gpusim::DeviceSpec::geforce_gtx580());

    std::vector<Grid3<double>> gold_in;
    for (auto& g : inputs) {
      gold_in.emplace_back(extent, halo);
      gold_in.back().fill_with_halo(
          [&](int i, int j, int k) { return g.at(i, j, k); });
    }
    std::vector<Grid3<double>> gold_out;
    for (int o = 0; o < formula.n_outputs(); ++o) gold_out.emplace_back(extent, halo);
    std::vector<const Grid3<double>*> gin;
    std::vector<Grid3<double>*> gout;
    for (auto& g : gold_in) gin.push_back(&g);
    for (auto& g : gold_out) gout.push_back(&g);
    apps::apply_formula<double>(formula, gin, gout);

    const UlpBudget budget = UlpBudget::for_radius(halo, sizeof(double)).scaled(4.0);
    for (int o = 0; o < formula.n_outputs(); ++o) {
      const UlpGridDiff diff =
          ulp_compare_grids(outputs[static_cast<std::size_t>(o)],
                            gold_out[static_cast<std::size_t>(o)], budget);
      EXPECT_TRUE(diff.pass) << "seed " << GetParam() << " method "
                             << apps::to_string(method) << " cfg " << cfg.to_string()
                             << " output " << o << ": " << diff.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormula, testing::Range(1, 21));

// --- Random wide configs on the core stencil kernels ---------------------------------

// Float kernels at the wide end of the configuration space — float4 loads
// and rx*ry register blocks — against the CPU reference, every method.
class RandomWideConfig : public testing::TestWithParam<int> {};

TEST_P(RandomWideConfig, FloatKernelMatchesReference) {
  constexpr std::uint64_t kSeedMix = 2654435761ull;
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * kSeedMix);
  std::uniform_int_distribution<int> radius_pick(1, 4);
  const int radius = radius_pick(rng);
  const StencilCoeffs cs =
      StencilCoeffs::random(radius, static_cast<std::uint64_t>(GetParam()));
  const LaunchConfig cfg = random_config(rng, sizeof(float));
  const Extent3 extent{32, 16, 8};

  for (Method method : {Method::ForwardPlane, Method::InPlaneClassical,
                        Method::InPlaneVertical, Method::InPlaneHorizontal,
                        Method::InPlaneFullSlice}) {
    const auto kernel = kernels::make_kernel<float>(method, cs, cfg);
    Grid3<float> in = kernels::make_grid_for(*kernel, extent);
    std::mt19937_64 grng(rng());
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    in.fill_with_halo([&](int, int, int) { return static_cast<float>(val(grng)); });
    Grid3<float> out = kernels::make_grid_for(*kernel, extent);
    out.fill(-999.0f);
    kernels::run_kernel(*kernel, in, out, gpusim::DeviceSpec::geforce_gtx580());

    Grid3<float> gold(extent, radius);
    gold.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
    Grid3<float> gold_out(extent, radius);
    apply_reference(gold, gold_out, cs);

    const UlpGridDiff diff = ulp_compare_grids(
        out, gold_out, UlpBudget::for_radius(radius, sizeof(float)));
    EXPECT_TRUE(diff.pass) << "seed " << GetParam() << " " << kernels::to_string(method)
                           << " cfg " << cfg.to_string() << ": " << diff.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWideConfig, testing::Range(1, 13));

// --- Coalescer vs brute force ------------------------------------------------------

class RandomCoalesce : public testing::TestWithParam<int> {};

TEST_P(RandomCoalesce, MatchesBruteForceSegmentSet) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::uniform_int_distribution<std::uint64_t> addr(0, 4096);
  std::uniform_int_distribution<int> size_pick(0, 2);
  std::uniform_int_distribution<int> active(0, 3);
  const std::uint32_t sizes[] = {4, 8, 16};
  for (std::uint32_t seg : {32u, 128u}) {
    std::array<gpusim::LaneAccess, 32> lanes;
    for (auto& l : lanes) {
      l = {addr(rng) * 4, sizes[size_pick(rng)], active(rng) != 0};
    }
    const gpusim::CoalesceResult r = gpusim::coalesce(lanes, seg);
    std::set<std::uint64_t> segments;
    std::uint64_t requested = 0;
    for (const auto& l : lanes) {
      if (!l.active) continue;
      requested += l.bytes;
      for (std::uint64_t b = l.addr / seg; b <= (l.addr + l.bytes - 1) / seg; ++b) {
        segments.insert(b);
      }
    }
    EXPECT_EQ(r.transactions, segments.size()) << "seg " << seg;
    EXPECT_EQ(r.bytes_requested, requested);
    EXPECT_EQ(r.bytes_transferred, segments.size() * seg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoalesce, testing::Range(1, 26));

// --- Bank conflicts vs brute force ---------------------------------------------------

class RandomBanking : public testing::TestWithParam<int> {};

TEST_P(RandomBanking, MatchesBruteForceHistogram) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  std::uniform_int_distribution<std::uint32_t> off(0, 8188);
  std::uniform_int_distribution<int> active(0, 4);
  gpusim::SharedMemory smem(32768);
  std::array<gpusim::SmemLaneAccess, 32> lanes;
  for (auto& l : lanes) l = {off(rng) & ~3u, 4, active(rng) != 0};
  const auto r = smem.analyze(lanes);

  // Brute force: per bank, count distinct words; replays = max - 1.
  std::map<std::uint32_t, std::set<std::uint32_t>> banks;
  bool any = false;
  for (const auto& l : lanes) {
    if (!l.active) continue;
    any = true;
    const std::uint32_t word = l.offset / 4;
    banks[word % 32].insert(word);
  }
  std::size_t max_words = any ? 1 : 0;
  for (const auto& [bank, words] : banks) max_words = std::max(max_words, words.size());
  EXPECT_EQ(r.any_active, any);
  EXPECT_EQ(r.replays, any ? max_words - 1 : 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBanking, testing::Range(1, 26));

// --- Multi-timestep integration -------------------------------------------------------

class MultiStep : public testing::TestWithParam<int> {};

TEST_P(MultiStep, SimulatedKernelLoopMatchesReferenceLoop) {
  const int order = GetParam();
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const Extent3 extent{32, 16, 8};
  const auto kernel = kernels::make_kernel<double>(Method::InPlaneFullSlice, cs,
                                                   LaunchConfig{16, 4, 2, 2, 2});
  const auto dev = gpusim::DeviceSpec::tesla_c2070();

  Grid3<double> a = kernels::make_grid_for(*kernel, extent);
  a.fill_with_halo([](int i, int j, int k) {
    return 0.1 * i - 0.05 * j + 0.01 * k + ((i + j + k) % 3);
  });
  Grid3<double> b = kernels::make_grid_for(*kernel, extent);
  b.fill_with_halo([&](int i, int j, int k) { return a.at(i, j, k); });

  ComputeKernelFn<double> sim = [&](const Grid3<double>& in, Grid3<double>& out) {
    kernels::run_kernel(*kernel, in, out, dev);
  };
  const auto outcome = run_iterative_stencil(a, b, sim, StopCriteria{4, -1.0});

  Grid3<double> x(extent, cs.radius());
  x.fill_with_halo([](int i, int j, int k) {
    return 0.1 * i - 0.05 * j + 0.01 * k + ((i + j + k) % 3);
  });
  Grid3<double> y(extent, cs.radius());
  y.fill_with_halo([&](int i, int j, int k) { return x.at(i, j, k); });
  const auto gold = run_reference_loop(x, y, cs, StopCriteria{4, -1.0});

  // 4 chained timesteps compound the per-step budget.
  const UlpGridDiff diff = ulp_compare_grids(
      *outcome.result, *gold.result, UlpBudget::for_order(order, sizeof(double)).scaled(4.0));
  EXPECT_TRUE(diff.pass) << "order " << order << ": " << diff.describe();
}

INSTANTIATE_TEST_SUITE_P(Orders, MultiStep, testing::Values(2, 4, 6));

}  // namespace
}  // namespace inplane
