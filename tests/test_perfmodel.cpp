// The section-VI analytic performance model: Eqns. (6)-(14) plumbing,
// Bytes_Blk accounting per loading method, and ranking properties the
// model-guided tuner depends on.

#include <gtest/gtest.h>

#include "perfmodel/model.hpp"

namespace inplane::perfmodel {
namespace {

using kernels::LaunchConfig;
using kernels::Method;

ModelInput base_input() {
  ModelInput in;
  in.grid = {512, 512, 256};
  in.radius = 2;
  in.method = Method::InPlaneFullSlice;
  in.config = LaunchConfig{64, 8, 1, 2, 4};
  return in;
}

TEST(PerfModel, ValidEvaluation) {
  const ModelResult r = evaluate(gpusim::DeviceSpec::geforce_gtx580(), base_input());
  ASSERT_TRUE(r.valid) << r.invalid_reason;
  EXPECT_GT(r.mpoints_per_s, 0.0);
  EXPECT_GT(r.act_blks, 0);
  EXPECT_GE(r.stages, 1);
  EXPECT_GE(r.rem_blks, 1);
  EXPECT_GT(r.t_m_cycles, 0.0);
  EXPECT_GT(r.t_c_cycles, 0.0);
}

TEST(PerfModel, Eqn6BlockCount) {
  const ModelResult r = evaluate(gpusim::DeviceSpec::geforce_gtx580(), base_input());
  // 512/(64*1) * 512/(8*2) = 8 * 32 = 256.
  EXPECT_EQ(r.blks, 256);
}

TEST(PerfModel, StagesConsistentWithEqn8) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const ModelResult r = evaluate(dev, base_input());
  const long per_round = static_cast<long>(r.act_blks) * dev.sm_count;
  EXPECT_EQ(r.stages, static_cast<int>((r.blks + per_round - 1) / per_round));
}

TEST(PerfModel, InvalidWhenTileDoesNotDivide) {
  ModelInput in = base_input();
  in.config.tx = 48;
  EXPECT_FALSE(evaluate(gpusim::DeviceSpec::geforce_gtx580(), in).valid);
}

TEST(PerfModel, InvalidWhenOverResources) {
  ModelInput in = base_input();
  in.config = LaunchConfig{256, 4, 4, 8, 4};  // register estimate explodes
  const ModelResult r = evaluate(gpusim::DeviceSpec::geforce_gtx580(), in);
  EXPECT_FALSE(r.valid);
  EXPECT_FALSE(r.invalid_reason.empty());
}

TEST(PerfModel, BytesPerPlaneBlock) {
  ModelInput in = base_input();
  in.radius = 1;
  in.config = LaunchConfig{32, 8, 1, 1, 4};
  in.method = Method::InPlaneFullSlice;
  // (32*8 interior + 2*1*32 + 2*1*8 + 4 corners + 32*8 store) * 4 bytes.
  EXPECT_DOUBLE_EQ(bytes_per_plane_block(in), (256 + 64 + 16 + 4 + 256) * 4.0);
  in.method = Method::InPlaneVertical;
  EXPECT_DOUBLE_EQ(bytes_per_plane_block(in), (256 + 64 + 16 + 256) * 4.0);
}

TEST(PerfModel, DoublePrecisionDoublesBytes) {
  ModelInput in = base_input();
  const double sp = bytes_per_plane_block(in);
  in.is_double = true;
  EXPECT_DOUBLE_EQ(bytes_per_plane_block(in), 2.0 * sp);
}

TEST(PerfModel, CornerOverheadGrowsWithRadius) {
  ModelInput slice = base_input();
  ModelInput merged = base_input();
  merged.method = Method::InPlaneHorizontal;
  for (int r : {1, 2, 4, 6}) {
    slice.radius = r;
    merged.radius = r;
    const double overhead = bytes_per_plane_block(slice) - bytes_per_plane_block(merged);
    EXPECT_DOUBLE_EQ(overhead, 4.0 * r * r * 4.0);  // 4r^2 elements (III-C1)
  }
}

TEST(PerfModel, HigherOrderNeverFaster) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  double prev = 1e300;
  for (int r = 1; r <= 6; ++r) {
    ModelInput in = base_input();
    in.radius = r;
    const ModelResult res = evaluate(dev, in);
    ASSERT_TRUE(res.valid);
    EXPECT_LE(res.mpoints_per_s, prev) << "radius " << r;
    prev = res.mpoints_per_s;
  }
}

TEST(PerfModel, InPlaneOpsCountedAgainstForward) {
  // Same geometry: the in-plane method has 8r+1 vs 7r+1 ops, so its T_c is
  // larger; its bytes are the same as classical + corners.
  ModelInput fwd = base_input();
  fwd.method = Method::ForwardPlane;
  fwd.config = LaunchConfig{32, 8, 1, 1, 1};
  ModelInput inp = fwd;
  inp.method = Method::InPlaneFullSlice;
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const ModelResult rf = evaluate(dev, fwd);
  const ModelResult ri = evaluate(dev, inp);
  ASSERT_TRUE(rf.valid && ri.valid);
  EXPECT_GT(ri.t_c_cycles, rf.t_c_cycles);
}

TEST(PerfModel, ModelPrefersRegisterBlockingWhenMemoryBound) {
  // Bigger tiles amortise halo bytes: (64,8,2,2) should beat (64,8,1,1)
  // for a bandwidth-bound stencil in the model too.
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  ModelInput small = base_input();
  small.config = LaunchConfig{64, 8, 1, 1, 4};
  ModelInput big = base_input();
  big.config = LaunchConfig{64, 8, 2, 2, 4};
  const ModelResult rs = evaluate(dev, small);
  const ModelResult rb = evaluate(dev, big);
  ASSERT_TRUE(rs.valid && rb.valid);
  EXPECT_GT(rb.mpoints_per_s, rs.mpoints_per_s);
}

}  // namespace
}  // namespace inplane::perfmodel
