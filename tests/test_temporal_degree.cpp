// Degree-N temporal blocking as a tuner dimension — the property harness
// that pins it:
//
//  * differential oracle: for every degree N in {1..4}, order in
//    {2, 4, 6, 8}, SP and DP, the degree-N kernel's output equals N
//    applications of the CPU reference with a frozen halo, under the
//    centralized ULP budget scaled by N;
//  * metamorphic composition: degree-N-then-M == degree-M-then-N ==
//    N+M single reference steps == one degree-(N+M) sweep;
//  * degenerate grids: the shallowest legal pipeline (nz = N*r + 1),
//    one-row tiles, single-block launches — and the loud rejection one
//    plane below the legal minimum;
//  * trace-memo interaction: the block-class memo must stay bit-identical
//    for the staged kernel and obey the same bypass rules as the
//    single-step kernels (nothing to memoize in Functional mode, one-block
//    launches self-bypass, multi-block trace sweeps do memoize);
//  * the tuner: enumerate() never emits — and the exhaustive sweep never
//    selects — a temporal degree that validate() would reject.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "autotune/search_space.hpp"
#include "autotune/tuner.hpp"
#include "core/grid_compare.hpp"
#include "core/ulp_compare.hpp"
#include "kernels/runner.hpp"
#include "kernels/stencil_kernel.hpp"
#include "metrics/metrics.hpp"
#include "verify/reference_oracle.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using gpusim::ExecMode;
using gpusim::TraceStats;

const gpusim::DeviceSpec kGtx580 = gpusim::DeviceSpec::geforce_gtx580();

/// The functional-correctness sweeps cover degree 4 at order 8, whose ring
/// hierarchy genuinely exceeds a 2011-era 48 KB SM (that infeasibility is
/// itself pinned by the tuner tests below).  Correctness of the staged
/// arithmetic is independent of any one card's limits, so the differential
/// sweep runs on a simulated device with room to spare.
gpusim::DeviceSpec roomy_device() {
  gpusim::DeviceSpec d = gpusim::DeviceSpec::geforce_gtx580();
  d.name = "roomy-sim";
  d.smem_per_sm = 1 << 20;
  return d;
}

template <typename T>
void fill_test_pattern(Grid3<T>& g) {
  g.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.13 * i) + 0.05 * j - 0.04 * k +
                          0.002 * i * k);
  });
}

/// Scoped override of the process-wide memo switch.
class MemoSwitch {
 public:
  explicit MemoSwitch(bool enabled) : was_(trace_memo_enabled()) {
    set_trace_memo_enabled(enabled);
  }
  ~MemoSwitch() { set_trace_memo_enabled(was_); }

 private:
  bool was_;
};

// --- differential oracle: degree N vs N reference steps -------------------

struct DegreeCase {
  int degree;
  int order;
};

std::string degree_case_name(const testing::TestParamInfo<DegreeCase>& info) {
  return "n" + std::to_string(info.param.degree) + "_o" +
         std::to_string(info.param.order);
}

template <typename T>
void expect_matches_n_steps(int degree, int order, Extent3 extent,
                            LaunchConfig cfg,
                            const gpusim::DeviceSpec& device) {
  const int radius = order / 2;
  cfg.tb = degree;
  const StencilCoeffs cs = StencilCoeffs::diffusion(radius);
  const auto kernel = make_kernel<T>(Method::InPlaneFullSlice, cs, cfg);
  ASSERT_EQ(kernel->time_steps(), degree);
  ASSERT_EQ(kernel->required_halo(), degree * radius);

  Grid3<T> in = make_grid_for(*kernel, extent);
  fill_test_pattern(in);
  Grid3<T> out = make_grid_for(*kernel, extent);
  out.fill(static_cast<T>(-777));
  run_kernel(*kernel, in, out, device);

  const Status st = verify::reference_status_n(
      cs, in, out, degree,
      UlpBudget::for_radius(radius, sizeof(T))
          .scaled(static_cast<double>(degree)));
  EXPECT_TRUE(st.ok()) << "degree " << degree << " order " << order << ": "
                       << st.context;
}

class TemporalDegreeOracle : public testing::TestWithParam<DegreeCase> {};

TEST_P(TemporalDegreeOracle, FloatMatchesNReferenceSteps) {
  // nz = 20 > 4 * 4 keeps the deepest pipeline legal.
  expect_matches_n_steps<float>(GetParam().degree, GetParam().order,
                                {32, 16, 20}, {16, 4, 1, 1, 1}, roomy_device());
}

TEST_P(TemporalDegreeOracle, DoubleMatchesNReferenceSteps) {
  // A wider block than the float sweep: doubles take two register slots,
  // and degree 4 at order 8 would put a 16 x 4 block's per-thread queue
  // past the 255-register encoding limit.
  expect_matches_n_steps<double>(GetParam().degree, GetParam().order,
                                 {32, 16, 20}, {32, 8, 1, 1, 1},
                                 roomy_device());
}

TEST_P(TemporalDegreeOracle, FloatVectorizedRegisterTiledMatches) {
  // The staged pipeline on top of the full merged-load machinery:
  // vectorised loads plus register blocking in both directions.
  expect_matches_n_steps<float>(GetParam().degree, GetParam().order,
                                {64, 16, 20}, {16, 4, 2, 2, 2},
                                roomy_device());
}

INSTANTIATE_TEST_SUITE_P(AllDegreesAllOrders, TemporalDegreeOracle,
                         testing::ValuesIn([] {
                           std::vector<DegreeCase> cases;
                           for (int n = 1; n <= 4; ++n) {
                             for (int o = 2; o <= 8; o += 2) {
                               cases.push_back({n, o});
                             }
                           }
                           return cases;
                         }()),
                         degree_case_name);

// --- metamorphic composition ----------------------------------------------

/// Runs the degree-@p degree kernel on @p in with the halo re-frozen at
/// @p t0's values, so chained sweeps see the same boundary the reference
/// chain does.
template <typename T>
Grid3<T> run_degree(int degree, int radius, const Grid3<T>& t0,
                    const Grid3<T>& in, Extent3 extent,
                    const gpusim::DeviceSpec& device) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(radius);
  const auto kernel =
      make_kernel<T>(Method::InPlaneFullSlice, cs, {16, 4, 1, 1, 1, degree});
  Grid3<T> staged = make_grid_for(*kernel, extent);
  staged.fill_with_halo([&](int i, int j, int k) {
    return staged.is_interior(i, j, k) ? in.at(i, j, k) : t0.at(i, j, k);
  });
  Grid3<T> out = make_grid_for(*kernel, extent);
  run_kernel(*kernel, staged, out, device);
  return out;
}

template <typename T>
void expect_composition_commutes(int n, int m, int order) {
  const int radius = order / 2;
  const Extent3 extent{32, 16, 2 * (n + m) * radius};
  const auto device = roomy_device();
  const StencilCoeffs cs = StencilCoeffs::diffusion(radius);

  // A halo wide enough for every kernel in play.
  Grid3<T> t0(extent, (n + m) * radius);
  fill_test_pattern(t0);

  const Grid3<T> after_n = run_degree<T>(n, radius, t0, t0, extent, device);
  const Grid3<T> out_nm =
      run_degree<T>(m, radius, t0, after_n, extent, device);
  const Grid3<T> after_m = run_degree<T>(m, radius, t0, t0, extent, device);
  const Grid3<T> out_mn =
      run_degree<T>(n, radius, t0, after_m, extent, device);
  const Grid3<T> out_single =
      run_degree<T>(n + m, radius, t0, t0, extent, device);

  const UlpBudget budget = UlpBudget::for_radius(radius, sizeof(T))
                               .scaled(2.0 * static_cast<double>(n + m));
  const UlpGridDiff nm_vs_mn = ulp_compare_grids(out_nm, out_mn, budget);
  EXPECT_TRUE(nm_vs_mn.pass)
      << n << "-then-" << m << " vs " << m << "-then-" << n << ": "
      << nm_vs_mn.describe();
  const UlpGridDiff nm_vs_one = ulp_compare_grids(out_nm, out_single, budget);
  EXPECT_TRUE(nm_vs_one.pass)
      << n << "-then-" << m << " vs one degree-" << (n + m)
      << " sweep: " << nm_vs_one.describe();

  // ... and all of it equals n + m frozen-halo reference steps.
  const Status st = verify::reference_status_n(
      cs, t0, out_nm, n + m,
      UlpBudget::for_radius(radius, sizeof(T))
          .scaled(static_cast<double>(n + m)));
  EXPECT_TRUE(st.ok()) << st.context;
}

TEST(TemporalDegreeMetamorphic, TwoThenThreeCommutesOrder2Float) {
  expect_composition_commutes<float>(2, 3, 2);
}

TEST(TemporalDegreeMetamorphic, TwoThenThreeCommutesOrder4Double) {
  expect_composition_commutes<double>(2, 3, 4);
}

TEST(TemporalDegreeMetamorphic, OneThenTwoEqualsThreeOrder6Float) {
  // Degree 1 degenerates to the plain single-step sweep; composing it must
  // still land on the same chain.
  expect_composition_commutes<float>(1, 2, 6);
}

// --- degenerate grids ------------------------------------------------------

TEST(TemporalDegreeDegenerate, ShallowestLegalPipelineDepth) {
  // nz = N*r + 1: every stage drains through a single steady-state plane.
  for (int degree : {2, 3, 4}) {
    const int radius = 1;
    expect_matches_n_steps<float>(degree, 2 * radius,
                                  {16, 4, degree * radius + 1},
                                  {16, 4, 1, 1, 1}, kGtx580);
  }
}

TEST(TemporalDegreeDegenerate, SingleBlockOneRowTile) {
  // tile == grid and h = 1: the ghost zones dwarf the interior.
  expect_matches_n_steps<double>(3, 4, {16, 1, 8}, {16, 1, 1, 1, 1},
                                 roomy_device());
}

TEST(TemporalDegreeDegenerate, OnePlaneBelowMinimumRejectsLoudly) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel =
      make_kernel<float>(Method::InPlaneFullSlice, cs, {16, 4, 1, 1, 1, 3});
  const Extent3 extent{16, 4, 6};  // nz == tb * r
  const auto err = kernel->validate(kGtx580, extent);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("too shallow"), std::string::npos) << *err;

  Grid3<float> in = make_grid_for(*kernel, extent);
  Grid3<float> out = make_grid_for(*kernel, extent);
  EXPECT_THROW(run_kernel(*kernel, in, out, kGtx580), std::invalid_argument);
}

// --- trace-memo interaction ------------------------------------------------

template <typename T>
void expect_temporal_memo_equivalent(int degree, int order, Extent3 extent,
                                     LaunchConfig cfg) {
  cfg.tb = degree;
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const auto kernel = make_kernel<T>(Method::InPlaneFullSlice, cs, cfg);
  Grid3<T> in = make_grid_for(*kernel, extent);
  fill_test_pattern(in);

  const auto run = [&](ExecMode mode, bool memo, Grid3<T>& out) {
    MemoSwitch guard(memo);
    return run_kernel(*kernel, in, out, kGtx580, mode);
  };

  Grid3<T> out_plain = make_grid_for(*kernel, extent);
  Grid3<T> out_memo = make_grid_for(*kernel, extent);
  const TraceStats both_plain = run(ExecMode::Both, false, out_plain);
  const TraceStats both_memo = run(ExecMode::Both, true, out_memo);
  EXPECT_TRUE(both_plain == both_memo);
  ASSERT_EQ(out_plain.allocated(), out_memo.allocated());
  EXPECT_EQ(std::memcmp(out_plain.raw(), out_memo.raw(),
                        out_plain.allocated() * sizeof(T)),
            0);

  Grid3<T> scratch = make_grid_for(*kernel, extent);
  const TraceStats trace_plain = run(ExecMode::Trace, false, scratch);
  const TraceStats trace_memo = run(ExecMode::Trace, true, scratch);
  EXPECT_TRUE(trace_plain == trace_memo);
}

TEST(TemporalDegreeTraceMemo, MemoizedSweepBitIdenticalFloat) {
  expect_temporal_memo_equivalent<float>(2, 2, {64, 32, 8}, {16, 4, 1, 2, 2});
}

TEST(TemporalDegreeTraceMemo, MemoizedSweepBitIdenticalDeepDouble) {
  expect_temporal_memo_equivalent<double>(3, 4, {64, 16, 10},
                                          {16, 4, 1, 1, 1});
}

class TemporalMemoCounters : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics::enabled();
    metrics::set_enabled(true);
    metrics::Registry::global().reset();
    set_trace_memo_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_enabled_); }

  static std::uint64_t memo_launches() {
    return metrics::Registry::global()
        .counter("gpusim.trace_memo.launches")
        .value();
  }

  static TraceStats run_temporal(ExecMode mode, Extent3 extent,
                                 LaunchConfig cfg) {
    const auto kernel = make_kernel<float>(Method::InPlaneFullSlice,
                                           StencilCoeffs::diffusion(1), cfg);
    Grid3<float> in = make_grid_for(*kernel, extent);
    Grid3<float> out = make_grid_for(*kernel, extent);
    fill_test_pattern(in);
    return run_kernel(*kernel, in, out, kGtx580, mode);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(TemporalMemoCounters, MultiBlockTraceSweepMemoizes) {
  run_temporal(ExecMode::Trace, {64, 32, 8}, {16, 4, 1, 1, 1, 2});
  EXPECT_EQ(memo_launches(), 1u);
  const std::uint64_t classes =
      metrics::Registry::global().counter("gpusim.trace_memo.classes").value();
  const std::uint64_t replayed = metrics::Registry::global()
                                     .counter("gpusim.trace_memo.blocks_replayed")
                                     .value();
  EXPECT_GE(classes, 1u);
  EXPECT_EQ(classes + replayed, 4u * 8u);  // partition covers the launch
}

TEST_F(TemporalMemoCounters, FunctionalModeHasNothingToMemoize) {
  run_temporal(ExecMode::Functional, {64, 32, 8}, {16, 4, 1, 1, 1, 2});
  EXPECT_EQ(memo_launches(), 0u);
}

TEST_F(TemporalMemoCounters, SingleBlockLaunchSelfBypasses) {
  run_temporal(ExecMode::Trace, {16, 4, 8}, {16, 4, 1, 1, 1, 2});
  EXPECT_EQ(memo_launches(), 0u);
}

// --- the tuner never touches an invalid degree ------------------------------

TEST(TemporalDegreeTuner, EnumerateNeverEmitsResourceViolatingDegree) {
  const Extent3 extent{64, 32, 20};
  autotune::SearchSpace space;
  space.set_max_temporal_degree(4);
  for (int order : {2, 4, 6, 8}) {
    const int radius = order / 2;
    const StencilCoeffs cs = StencilCoeffs::diffusion(radius);
    const auto configs =
        space.enumerate(kGtx580, extent, Method::InPlaneFullSlice, radius,
                        sizeof(float), 1);
    int temporal_configs = 0;
    for (const LaunchConfig& cfg : configs) {
      if (cfg.tb > 1) ++temporal_configs;
      const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, cs, cfg);
      const auto err = kernel->validate(kGtx580, extent);
      EXPECT_FALSE(err.has_value())
          << "order " << order << " cfg " << cfg.to_string() << ": " << *err;
    }
    // The property must not hold vacuously: the widened space really does
    // offer temporal candidates at every order.
    EXPECT_GT(temporal_configs, 0) << "order " << order;
  }
}

TEST(TemporalDegreeTuner, ExhaustiveSweepSelectsOnlyValidDegrees) {
  const Extent3 extent{32, 16, 12};
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  autotune::SearchSpace space;
  space.tx_values = {16, 32};
  space.ty_values = {4, 8};
  space.rx_values = {1};
  space.ry_values = {1, 2};
  space.set_max_temporal_degree(4);

  const autotune::TuneResult result = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, kGtx580, extent, space);
  ASSERT_TRUE(result.found());
  EXPECT_GE(result.best.config.tb, 1);
  EXPECT_LE(result.best.config.tb, 4);

  // Every measured candidate — not just the winner — must be a
  // configuration validate() accepts; the sweep never spends a slot on a
  // degree the kernel would refuse.
  for (const autotune::TuneEntry& e : result.entries) {
    if (!e.executed) continue;
    const auto kernel =
        make_kernel<float>(Method::InPlaneFullSlice, cs, e.config);
    const auto err = kernel->validate(kGtx580, extent);
    EXPECT_FALSE(err.has_value())
        << "cfg " << e.config.to_string() << ": " << *err;
  }
}

}  // namespace
