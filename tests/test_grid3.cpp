// GridLayout / Grid3: indexing, padding, halo addressing, and the
// alignment guarantees the vectorised loading patterns depend on
// (section III-C2).

#include <gtest/gtest.h>

#include "core/grid3.hpp"

namespace inplane {
namespace {

TEST(GridLayout, InteriorRowStartIsAligned) {
  for (int halo : {0, 1, 3, 6}) {
    const GridLayout layout({40, 10, 5}, halo, sizeof(float), 32, 0);
    for (int k = -halo; k < 5 + halo; ++k) {
      for (int j = -halo; j < 10 + halo; ++j) {
        EXPECT_EQ(layout.index(0, j, k) % 32, 0u) << "halo " << halo;
      }
    }
  }
}

TEST(GridLayout, AlignOffsetShiftsTheAlignedColumn) {
  for (int off : {1, 2, 4, 6}) {
    const GridLayout layout({64, 8, 4}, 6, sizeof(float), 32, off);
    EXPECT_EQ(layout.index(-off, 0, 0) % 32, 0u) << "offset " << off;
    EXPECT_EQ(layout.index(-off, 3, 2) % 32, 0u) << "offset " << off;
  }
}

TEST(GridLayout, PitchIsAlignedAndCoversRow) {
  const GridLayout layout({100, 7, 3}, 2, sizeof(double), 32, 0);
  EXPECT_EQ(layout.pitch_x() % 32, 0u);
  EXPECT_GE(layout.pitch_x(), 100u + 2u * 2u);
}

TEST(GridLayout, IndexIsXFastestAndContiguous) {
  const GridLayout layout({16, 4, 3}, 1, sizeof(float));
  EXPECT_EQ(layout.index(5, 2, 1) + 1, layout.index(6, 2, 1));
  EXPECT_EQ(layout.index(0, 2, 1) + layout.pitch_x(), layout.index(0, 3, 1));
  EXPECT_EQ(layout.index(0, 2, 1) + layout.plane_stride(), layout.index(0, 2, 2));
}

TEST(GridLayout, ByteOffsetScalesWithElemSize) {
  const GridLayout f({16, 4, 3}, 1, 4);
  const GridLayout d({16, 4, 3}, 1, 8);
  EXPECT_EQ(f.byte_offset(3, 1, 2) * 2, d.byte_offset(3, 1, 2));
}

TEST(GridLayout, DistinctCellsHaveDistinctIndices) {
  const GridLayout layout({8, 6, 4}, 2, 4, 32, 1);
  std::set<std::size_t> seen;
  for (int k = -2; k < 6; ++k)
    for (int j = -2; j < 8; ++j)
      for (int i = -2; i < 10; ++i) {
        EXPECT_TRUE(seen.insert(layout.index(i, j, k)).second);
        EXPECT_LT(layout.index(i, j, k), layout.allocated());
      }
}

TEST(GridLayout, RejectsBadParameters) {
  EXPECT_THROW(GridLayout({0, 4, 4}, 1, 4), std::invalid_argument);
  EXPECT_THROW(GridLayout({4, 4, 4}, -1, 4), std::invalid_argument);
  EXPECT_THROW(GridLayout({4, 4, 4}, 1, 4, 24), std::invalid_argument);  // not pow2
  EXPECT_THROW(GridLayout({4, 4, 4}, 1, 4, 32, 2), std::invalid_argument);  // > halo
  EXPECT_THROW(GridLayout({4, 4, 4}, 1, 0), std::invalid_argument);  // elem size
}

TEST(Grid3, HaloAndInteriorAreIndependentlyAddressable) {
  Grid3<float> g({8, 8, 8}, 2);
  g.fill(0.0f);
  g.at(-2, 0, 0) = 1.0f;
  g.at(7, 9, 9) = 2.0f;
  EXPECT_EQ(g.at(-2, 0, 0), 1.0f);
  EXPECT_EQ(g.at(7, 9, 9), 2.0f);
  EXPECT_EQ(g.at(0, 0, 0), 0.0f);
}

TEST(Grid3, FillInteriorLeavesHaloAlone) {
  Grid3<double> g({4, 4, 4}, 1);
  g.fill(-1.0);
  g.fill_interior([](int i, int j, int k) { return double(i + j + k); });
  EXPECT_EQ(g.at(-1, 0, 0), -1.0);
  EXPECT_EQ(g.at(1, 2, 3), 6.0);
  EXPECT_EQ(g.at(4, 0, 0), -1.0);
}

TEST(Grid3, FillWithHaloCoversEverything) {
  Grid3<float> g({4, 4, 4}, 2);
  g.fill_with_halo([](int i, int, int) { return static_cast<float>(i); });
  EXPECT_EQ(g.at(-2, -2, -2), -2.0f);
  EXPECT_EQ(g.at(5, 5, 5), 5.0f);
}

TEST(Grid3, RandomIsDeterministic) {
  const auto a = Grid3<float>::random({8, 8, 4}, 1, 42);
  const auto b = Grid3<float>::random({8, 8, 4}, 1, 42);
  const auto c = Grid3<float>::random({8, 8, 4}, 1, 43);
  EXPECT_EQ(a.at(3, 3, 3), b.at(3, 3, 3));
  EXPECT_NE(a.at(3, 3, 3), c.at(3, 3, 3));
}

TEST(Grid3, LayoutConstructorChecksElemSize) {
  const GridLayout layout({4, 4, 4}, 1, 8);
  EXPECT_NO_THROW(Grid3<double>{layout});
  EXPECT_THROW(Grid3<float>{layout}, std::invalid_argument);
}

TEST(Grid3, IsInterior) {
  Grid3<float> g({4, 5, 6}, 2);
  EXPECT_TRUE(g.is_interior(0, 0, 0));
  EXPECT_TRUE(g.is_interior(3, 4, 5));
  EXPECT_FALSE(g.is_interior(-1, 0, 0));
  EXPECT_FALSE(g.is_interior(0, 5, 0));
  EXPECT_FALSE(g.is_interior(0, 0, 6));
}

TEST(Extent3, VolumeAndValidation) {
  EXPECT_EQ((Extent3{4, 5, 6}).volume(), 120u);
  EXPECT_NO_THROW((Extent3{1, 1, 1}).validate());
  EXPECT_THROW((Extent3{0, 1, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((Extent3{1, -2, 1}).validate(), std::invalid_argument);
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(0, 32), 0u);
  EXPECT_EQ(round_up(1, 32), 32u);
  EXPECT_EQ(round_up(32, 32), 32u);
  EXPECT_EQ(round_up(33, 32), 64u);
}

}  // namespace
}  // namespace inplane
