// Property tests tying the runner's metrics counters to the simulator
// ground truth: the per-launch deltas flushed into the global registry
// must agree exactly with the aggregated TraceStats of the run, and the
// trace itself must satisfy the trace auditor's closed-form invariants —
// across all five methods at every paper order, plus register-tiled and
// vectorised variants.  A counter that drifts from the trace (a missed
// flush, a double count, a wrong field) fails here by name.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "autotune/search_space.hpp"
#include "core/stencil_spec.hpp"
#include "kernels/runner.hpp"
#include "metrics/metrics.hpp"
#include "verify/trace_audit.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

const gpusim::DeviceSpec kDevice = gpusim::DeviceSpec::geforce_gtx580();
const Extent3 kExtent{256, 64, 32};

std::uint64_t counter(const char* name) {
  return metrics::Registry::global().counter(name).value();
}

/// Runs @p kernel over kExtent in trace mode with a freshly zeroed
/// registry and returns the aggregate trace.
template <typename T>
gpusim::TraceStats traced_run(const IStencilKernel<T>& kernel) {
  metrics::Registry::global().reset();
  Grid3<T> in = make_grid_for(kernel, kExtent);
  Grid3<T> out = make_grid_for(kernel, kExtent);
  return run_kernel(kernel, in, out, kDevice, gpusim::ExecMode::Trace);
}

/// The counter-vs-trace agreement contract for one completed launch.
void expect_counters_match(const gpusim::TraceStats& t, std::uint64_t nblocks,
                           const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(counter("gpusim.launches"), 1u);
  EXPECT_EQ(counter("gpusim.blocks"), nblocks);
  EXPECT_EQ(counter("gpusim.load_transactions"), t.load_transactions);
  EXPECT_EQ(counter("gpusim.store_transactions"), t.store_transactions);
  EXPECT_EQ(counter("gpusim.bytes_requested_ld"), t.bytes_requested_ld);
  EXPECT_EQ(counter("gpusim.bytes_transferred_ld"), t.bytes_transferred_ld);
  EXPECT_EQ(counter("gpusim.bytes_transferred_st"), t.bytes_transferred_st);
  EXPECT_EQ(counter("gpusim.smem_replays"), t.smem_replays);
  EXPECT_EQ(counter("gpusim.syncs"), t.syncs);
  EXPECT_EQ(counter("gpusim.flops"), t.flops);

  // The plane counter uses the auditor's barrier invariant: every loaded
  // plane costs exactly two barriers in every block, so the aggregate
  // sync count must split evenly and the quotient is the plane count.
  ASSERT_NE(nblocks, 0u);
  EXPECT_EQ(t.syncs % (2 * nblocks), 0u) << "2-barriers-per-plane violated";
  EXPECT_EQ(counter("gpusim.planes_loaded"), t.syncs / (2 * nblocks));
}

/// Whole-grid closed forms (the auditor pins the same facts per plane).
void expect_closed_forms(const gpusim::TraceStats& t, std::size_t elem_size,
                         const std::string& what) {
  SCOPED_TRACE(what);
  // Store-once: across the full sweep every output point is stored
  // exactly once.
  EXPECT_EQ(t.bytes_requested_st, kExtent.volume() * elem_size);
  // Coalescing sanity: transferred covers requested (efficiency <= 1)
  // and no transaction moves more than the largest 128-byte segment.
  EXPECT_GE(t.bytes_transferred_ld, t.bytes_requested_ld);
  EXPECT_LE(t.bytes_transferred_ld, 128u * t.load_transactions);
  EXPECT_GT(t.load_efficiency(), 0.0);
  EXPECT_LE(t.load_efficiency(), 1.0);
}

class CountersMatchTrace
    : public ::testing::TestWithParam<std::tuple<Method, int>> {
 protected:
  void SetUp() override {
    was_enabled_ = metrics::enabled();
    metrics::set_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_P(CountersMatchTrace, LaunchDeltasAgreeWithTraceAndAuditor) {
  const auto [method, order] = GetParam();
  LaunchConfig cfg{32, 8, 1, 1, 1};
  cfg.vec = autotune::default_vec(method, sizeof(float));
  const auto kernel =
      make_kernel<float>(method, StencilCoeffs::diffusion(order / 2), cfg);
  const gpusim::TraceStats t = traced_run(*kernel);
  const std::uint64_t nblocks =
      static_cast<std::uint64_t>(kExtent.nx / cfg.tile_w()) *
      static_cast<std::uint64_t>(kExtent.ny / cfg.tile_h());
  const std::string what =
      std::string(to_string(method)) + " order " + std::to_string(order);

  expect_counters_match(t, nblocks, what);
  expect_closed_forms(t, sizeof(float), what);

  // The per-plane trace behind the same kernel must satisfy every
  // closed-form invariant the auditor derives from the paper.
  const verify::AuditReport audit = verify::audit_kernel(*kernel, kDevice, kExtent);
  EXPECT_TRUE(audit.pass()) << what << ": " << audit.summary();
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByOrder, CountersMatchTrace,
    ::testing::Combine(::testing::Values(Method::ForwardPlane,
                                         Method::InPlaneClassical,
                                         Method::InPlaneVertical,
                                         Method::InPlaneHorizontal,
                                         Method::InPlaneFullSlice),
                       ::testing::Values(2, 4, 6, 8, 10, 12)),
    [](const auto& inst) {
      std::string name = to_string(std::get<0>(inst.param));
      std::erase(name, '-');
      return name + "_order" + std::to_string(std::get<1>(inst.param));
    });

class TracePropertyMisc : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics::enabled();
    metrics::set_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(TracePropertyMisc, RegisterTiledAndVectorisedVariantsAgree) {
  // vec x rx.ry coverage: the counter contract is launch-shape
  // independent.
  for (const LaunchConfig cfg :
       {LaunchConfig{16, 8, 2, 2, 2}, LaunchConfig{16, 4, 4, 1, 4},
        LaunchConfig{64, 2, 1, 2, 1}}) {
    for (Method m : {Method::ForwardPlane, Method::InPlaneHorizontal,
                     Method::InPlaneFullSlice}) {
      const auto kernel = make_kernel<float>(m, StencilCoeffs::diffusion(3), cfg);
      const gpusim::TraceStats t = traced_run(*kernel);
      const std::uint64_t nblocks =
          static_cast<std::uint64_t>(kExtent.nx / cfg.tile_w()) *
          static_cast<std::uint64_t>(kExtent.ny / cfg.tile_h());
      const std::string what = std::string(to_string(m)) + " " + cfg.to_string();
      expect_counters_match(t, nblocks, what);
      expect_closed_forms(t, sizeof(float), what);
    }
  }
}

TEST_F(TracePropertyMisc, DoublePrecisionStoreOnceHolds) {
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<double>(Method::InPlaneFullSlice, StencilCoeffs::diffusion(2), cfg);
  const gpusim::TraceStats t = traced_run(*kernel);
  expect_closed_forms(t, sizeof(double), "fullslice dp order 4");
  EXPECT_EQ(counter("gpusim.bytes_transferred_st"), t.bytes_transferred_st);
}

TEST_F(TracePropertyMisc, CountersAccumulateAcrossLaunches) {
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<float>(Method::ForwardPlane, StencilCoeffs::diffusion(1), cfg);
  const gpusim::TraceStats once = traced_run(*kernel);
  // Second launch on the same zeroed-then-populated registry.
  Grid3<float> in = make_grid_for(*kernel, kExtent);
  Grid3<float> out = make_grid_for(*kernel, kExtent);
  (void)run_kernel(*kernel, in, out, kDevice, gpusim::ExecMode::Trace);
  EXPECT_EQ(counter("gpusim.launches"), 2u);
  EXPECT_EQ(counter("gpusim.syncs"), 2 * once.syncs);
  EXPECT_EQ(counter("gpusim.flops"), 2 * once.flops);
}

TEST_F(TracePropertyMisc, ParallelExecutionFlushesIdenticalDeltas) {
  // The aggregate trace is bit-identical for every thread count, so the
  // flushed counters must be too.
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<float>(Method::InPlaneVertical, StencilCoeffs::diffusion(2), cfg);
  Grid3<float> in = make_grid_for(*kernel, kExtent);
  Grid3<float> out = make_grid_for(*kernel, kExtent);

  metrics::Registry::global().reset();
  (void)run_kernel(*kernel, in, out, kDevice, gpusim::ExecMode::Trace, ExecPolicy{1});
  const std::uint64_t serial_syncs = counter("gpusim.syncs");
  const std::uint64_t serial_ld = counter("gpusim.load_transactions");

  metrics::Registry::global().reset();
  (void)run_kernel(*kernel, in, out, kDevice, gpusim::ExecMode::Trace, ExecPolicy{4});
  EXPECT_EQ(counter("gpusim.syncs"), serial_syncs);
  EXPECT_EQ(counter("gpusim.load_transactions"), serial_ld);
}

TEST_F(TracePropertyMisc, DisabledCollectionRecordsNothing) {
  metrics::set_enabled(false);
  metrics::Registry::global().reset();
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<float>(Method::InPlaneFullSlice, StencilCoeffs::diffusion(2), cfg);
  Grid3<float> in = make_grid_for(*kernel, kExtent);
  Grid3<float> out = make_grid_for(*kernel, kExtent);
  const gpusim::TraceStats t =
      run_kernel(*kernel, in, out, kDevice, gpusim::ExecMode::Trace);
  EXPECT_GT(t.syncs, 0u);  // the run itself did real work
  EXPECT_EQ(counter("gpusim.launches"), 0u);
  EXPECT_EQ(counter("gpusim.syncs"), 0u);
}

TEST_F(TracePropertyMisc, TimingEvaluationCounterTicks) {
  metrics::Registry::global().reset();
  const LaunchConfig cfg{32, 8, 1, 1, 1};
  const auto kernel =
      make_kernel<float>(Method::InPlaneFullSlice, StencilCoeffs::diffusion(2), cfg);
  const gpusim::KernelTiming timing = time_kernel(*kernel, kDevice, kExtent);
  EXPECT_TRUE(timing.valid) << timing.invalid_reason;
  EXPECT_EQ(counter("gpusim.timing.evaluations"), 1u);
  EXPECT_EQ(counter("gpusim.launches"), 0u);  // timing traces one plane, no launch
}

}  // namespace
