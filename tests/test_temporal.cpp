// Temporal-blocking extension: the double-timestep kernel must equal two
// applications of the CPU reference (with the halo frozen between steps),
// and its traffic/resource trade-offs must have the expected shape.

#include <gtest/gtest.h>

#include <cmath>

#include "core/grid_compare.hpp"
#include "core/reference.hpp"
#include "core/ulp_compare.hpp"
#include "temporal/temporal_kernel.hpp"

namespace inplane::temporal {
namespace {

using kernels::LaunchConfig;

constexpr Extent3 kExtent{64, 32, 12};

template <typename T>
void expect_two_steps(int radius, LaunchConfig cfg) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(radius);
  const TemporalInPlaneKernel<T> kernel(cs, cfg);

  Grid3<T> in(kExtent, 2 * radius, 32, kernel.preferred_align_offset());
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.11 * i) + 0.04 * j - 0.03 * k + 0.001 * j * k);
  });
  Grid3<T> out(kExtent, 2 * radius, 32, kernel.preferred_align_offset());
  out.fill(static_cast<T>(-777));
  run_temporal_kernel(kernel, in, out, gpusim::DeviceSpec::geforce_gtx580());

  // Gold: two reference sweeps; the halo stays at its t=0 values between
  // steps (apply_reference never writes halo cells).
  Grid3<T> t0(kExtent, 2 * radius);
  t0.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<T> t1(kExtent, 2 * radius);
  t1.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  apply_reference(t0, t1, cs);
  Grid3<T> t2(kExtent, 2 * radius);
  apply_reference(t1, t2, cs);

  // Two chained sweeps compound the rounding error: double the budget.
  const UlpGridDiff diff =
      ulp_compare_grids(out, t2, UlpBudget::for_radius(radius, sizeof(T)).scaled(2.0));
  EXPECT_TRUE(diff.pass) << "radius " << radius << " cfg " << cfg.to_string() << ": "
                         << diff.describe();
}

struct TCase {
  int radius;
  LaunchConfig cfg;
};

std::string tcase_name(const testing::TestParamInfo<TCase>& info) {
  const TCase& c = info.param;
  return "r" + std::to_string(c.radius) + "_t" + std::to_string(c.cfg.tx) + "x" +
         std::to_string(c.cfg.ty) + "_r" + std::to_string(c.cfg.rx) + "x" +
         std::to_string(c.cfg.ry) + "_v" + std::to_string(c.cfg.vec);
}

class TemporalVsTwoSteps : public testing::TestWithParam<TCase> {};

TEST_P(TemporalVsTwoSteps, FloatMatches) {
  expect_two_steps<float>(GetParam().radius, GetParam().cfg);
}

TEST_P(TemporalVsTwoSteps, DoubleMatches) {
  LaunchConfig cfg = GetParam().cfg;
  if (cfg.vec == 4) cfg.vec = 2;
  expect_two_steps<double>(GetParam().radius, cfg);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TemporalVsTwoSteps,
                         testing::ValuesIn(std::vector<TCase>{
                             {1, {16, 4, 1, 1, 1, 2}},
                             {1, {32, 4, 1, 2, 4, 2}},
                             {1, {16, 2, 2, 4, 2, 2}},
                             {2, {16, 4, 1, 1, 1, 2}},
                             {2, {32, 2, 2, 2, 4, 2}},
                             {3, {16, 4, 2, 2, 2, 2}},
                         }),
                         tcase_name);

TEST(Temporal, RandomCoefficients) {
  const StencilCoeffs cs = StencilCoeffs::random(2, 77);
  const TemporalInPlaneKernel<double> kernel(cs, LaunchConfig{16, 4, 2, 2, 2, 2});
  Grid3<double> in(kExtent, 4, 32, kernel.preferred_align_offset());
  in.fill_with_halo([](int i, int j, int k) {
    return std::cos(0.2 * i - 0.1 * j) + 0.01 * k * k;
  });
  Grid3<double> out(kExtent, 4, 32, kernel.preferred_align_offset());
  run_temporal_kernel(kernel, in, out, gpusim::DeviceSpec::geforce_gtx680());

  Grid3<double> t0(kExtent, 4);
  t0.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<double> t1(kExtent, 4);
  t1.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  apply_reference(t0, t1, cs);
  Grid3<double> t2(kExtent, 4);
  apply_reference(t1, t2, cs);
  EXPECT_TRUE(
      ulp_compare_grids(out, t2, UlpBudget::for_radius(2, sizeof(double)).scaled(2.0))
          .pass);
}

TEST(Temporal, HalvesGlobalTrafficPerTimestep) {
  // The whole point: per point per TIMESTEP the temporal kernel moves
  // roughly half the single-step kernel's bytes (it loads once and stores
  // once for two updates).
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const LaunchConfig cfg{64, 8, 1, 2, 4, 2};
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();

  const TemporalInPlaneKernel<float> temporal(cs, cfg);
  const auto t_trace = temporal.trace_plane(dev, grid);
  LaunchConfig single_cfg = cfg;
  single_cfg.tb = 1;
  const auto single = kernels::make_kernel<float>(kernels::Method::InPlaneFullSlice,
                                                  cs, single_cfg);
  const auto s_trace = single->trace_plane(dev, grid);

  const double temporal_bytes_per_step =
      static_cast<double>(t_trace.bytes_transferred()) / 2.0;
  const double single_bytes = static_cast<double>(s_trace.bytes_transferred());
  EXPECT_LT(temporal_bytes_per_step, single_bytes * 0.75);
}

TEST(Temporal, RingCrushesSharedMemoryAtHighOrder) {
  const LaunchConfig cfg{64, 8, 1, 2, 4, 2};
  const auto smem = [&](int r) {
    return TemporalInPlaneKernel<float>(StencilCoeffs::diffusion(r), cfg)
        .resources()
        .smem_bytes;
  };
  EXPECT_LT(smem(1), smem(2));
  EXPECT_LT(smem(2), smem(4));
  // At radius 6 this tile no longer fits a 48 KB SM.
  const TemporalInPlaneKernel<float> k6(StencilCoeffs::diffusion(6), cfg);
  const auto err = k6.validate(gpusim::DeviceSpec::geforce_gtx580(), {512, 512, 256});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("shared memory"), std::string::npos);
}

TEST(Temporal, ValidationErrors) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const TemporalInPlaneKernel<float> k(cs, LaunchConfig{32, 4, 1, 1, 4, 2});
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  EXPECT_TRUE(k.validate(dev, {500, 512, 256}).has_value());  // 500 % 32 != 0
  EXPECT_TRUE(k.validate(dev, {512, 512, 2}).has_value());    // too shallow
  EXPECT_FALSE(k.validate(dev, {512, 512, 256}).has_value());

  Grid3<float> narrow({64, 32, 12}, 1);  // halo 1 < 2r
  Grid3<float> out({64, 32, 12}, 2);
  EXPECT_THROW(run_temporal_kernel(k, narrow, out, dev), std::invalid_argument);
}

// Each validate() branch reports the FIRST violated resource, with the
// exact numbers a tuner log or bug report needs.
TEST(Temporal, ValidateReportsThreadCountFirst) {
  const TemporalInPlaneKernel<float> k(StencilCoeffs::diffusion(1),
                                       LaunchConfig{64, 32, 1, 1, 1, 2});
  const auto err = k.validate(gpusim::DeviceSpec::geforce_gtx580(), {512, 512, 256});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("threads per block (2048)"), std::string::npos) << *err;
  EXPECT_NE(err->find("1024"), std::string::npos) << *err;
}

TEST(Temporal, ValidateReportsSharedMemoryWithExactBytes) {
  // Radius 6 at degree 2: slice (64+24) x (128+24) and a 13-plane ring.
  const TemporalInPlaneKernel<float> k(StencilCoeffs::diffusion(6),
                                       LaunchConfig{64, 8, 1, 16, 1, 2});
  const auto err = k.validate(gpusim::DeviceSpec::geforce_gtx580(), {512, 512, 256});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("shared memory"), std::string::npos) << *err;
  const auto res = k.resources();
  EXPECT_NE(err->find(std::to_string(res.smem_bytes)), std::string::npos) << *err;
  EXPECT_NE(err->find("49152"), std::string::npos) << *err;
}

TEST(Temporal, ValidateReportsRegisterPressureBeyondEncodingLimit) {
  // A 4 x 1 block at degree 4, radius 4: the shared rings still fit a
  // 48 KB SM, but each thread would own 175 extended points of queue and
  // history — far past the 255-register encoding limit.
  const TemporalInPlaneKernel<float> k(StencilCoeffs::diffusion(4),
                                       LaunchConfig{4, 1, 1, 1, 1, 4});
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  ASSERT_LE(k.resources().smem_bytes, static_cast<std::size_t>(dev.smem_per_sm));
  const auto err = k.validate(dev, {512, 512, 256});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("registers"), std::string::npos) << *err;
  EXPECT_NE(err->find(std::to_string(k.resources().regs_per_thread)),
            std::string::npos)
      << *err;
  EXPECT_NE(err->find("255"), std::string::npos) << *err;
}

TEST(Temporal, ValidateReportsPipelineDepthWithNumbers) {
  const TemporalInPlaneKernel<float> k(StencilCoeffs::diffusion(2),
                                       LaunchConfig{32, 4, 1, 1, 1, 3});
  const auto err = k.validate(gpusim::DeviceSpec::geforce_gtx580(), {512, 512, 6});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("too shallow"), std::string::npos) << *err;
  EXPECT_NE(err->find("nz = 6"), std::string::npos) << *err;
  EXPECT_NE(err->find("tb*r = 6"), std::string::npos) << *err;
}

TEST(Temporal, TimingValidAndBandwidthBound) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const TemporalInPlaneKernel<float> k(cs, LaunchConfig{64, 8, 1, 2, 4, 2});
  const auto t = time_temporal_kernel(k, gpusim::DeviceSpec::geforce_gtx580(),
                                      {512, 512, 256});
  ASSERT_TRUE(t.valid) << t.invalid_reason;
  EXPECT_GT(t.mpoints_per_s, 0.0);
}

}  // namespace
}  // namespace inplane::temporal
