// CUDA code generator: structural validation of the emitted kernels — the
// generated source must contain exactly the constructs the corresponding
// simulated kernel executes (queue recurrence, pipeline, loading pattern,
// vector types, blocking constants), and the harness must implement the
// section IV-B verify-against-CPU methodology.

#include <gtest/gtest.h>

#include "codegen/cuda_codegen.hpp"

namespace inplane::codegen {
namespace {

using kernels::LaunchConfig;
using kernels::Method;

int count(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

CudaKernelSpec spec(Method m, int r, LaunchConfig cfg, bool dp = false) {
  CudaKernelSpec s;
  s.method = m;
  s.radius = r;
  s.config = cfg;
  s.is_double = dp;
  return s;
}

TEST(CudaCodegen, NameEncodesEverything) {
  const auto s = spec(Method::InPlaneFullSlice, 2, {64, 4, 2, 2, 4});
  EXPECT_EQ(s.name(), "inplane_fullslice_r2_t64x4_r2x2_v4_sp");
  auto d = spec(Method::ForwardPlane, 1, {32, 16, 1, 1, 1}, true);
  EXPECT_EQ(d.name(), "nvstencil_r1_t32x16_r1x1_v1_dp");
  d.kernel_name = "custom";
  EXPECT_EQ(d.name(), "custom");
}

TEST(CudaCodegen, VectorTypes) {
  EXPECT_EQ(spec(Method::InPlaneFullSlice, 1, {32, 4, 1, 1, 4}).vector_type(),
            "float4");
  EXPECT_EQ(spec(Method::InPlaneFullSlice, 1, {32, 4, 1, 1, 2}, true).vector_type(),
            "double2");
  EXPECT_EQ(spec(Method::InPlaneFullSlice, 1, {32, 4, 1, 1, 1}).vector_type(),
            "float");
}

TEST(CudaCodegen, ValidationRejectsBadSpecs) {
  EXPECT_THROW(spec(Method::InPlaneFullSlice, 0, {32, 4, 1, 1, 1}).validate(),
               std::invalid_argument);
  EXPECT_THROW(spec(Method::InPlaneFullSlice, 1, {32, 4, 1, 1, 3}).validate(),
               std::invalid_argument);
  EXPECT_THROW(spec(Method::InPlaneFullSlice, 1, {32, 4, 1, 1, 4}, true).validate(),
               std::invalid_argument);  // double4 = 32 bytes
  EXPECT_THROW(generate_kernel(spec(Method::InPlaneFullSlice, -1, {32, 4, 1, 1, 1})),
               std::invalid_argument);
}

TEST(CudaCodegen, InPlaneKernelHasQueueRecurrence) {
  const std::string src =
      generate_kernel(spec(Method::InPlaneFullSlice, 3, {64, 4, 2, 2, 4}));
  EXPECT_NE(src.find("__global__ void inplane_fullslice_r3_t64x4_r2x2_v4_sp"),
            std::string::npos);
  EXPECT_NE(src.find("q[col][d] += c[d + 1] * cur;"), std::string::npos);  // Eqn. 5
  EXPECT_NE(src.find("back[col][m - 1]"), std::string::npos);              // Eqn. 3
  EXPECT_NE(src.find("if (k >= R)"), std::string::npos);  // delayed store
  EXPECT_NE(src.find("for (int k = 0; k < nz + R; ++k)"), std::string::npos);
  EXPECT_NE(src.find("constexpr int R = 3;"), std::string::npos);
  EXPECT_NE(src.find("float4"), std::string::npos);        // vectorised loads
  EXPECT_EQ(src.find("pipe"), std::string::npos);          // no forward pipeline
}

TEST(CudaCodegen, ForwardKernelHasPipeline) {
  const std::string src =
      generate_kernel(spec(Method::ForwardPlane, 2, {32, 16, 1, 1, 1}));
  EXPECT_NE(src.find("pipe[kCols][2 * R + 1]"), std::string::npos);
  EXPECT_NE(src.find("pipe[col][i] = pipe[col][i + 1];"), std::string::npos);
  EXPECT_NE(src.find("pipe[col][2 * R] = in[idx3(x, y, k + R)];"), std::string::npos);
  EXPECT_NE(src.find("pipe[col][R - m] + pipe[col][R + m]"), std::string::npos);
  EXPECT_EQ(src.find("q[col]"), std::string::npos);  // no in-plane queue
  // Fig. 4: four strips + four corner loads, all scalar.
  EXPECT_EQ(count(src, "// top strip"), 1);
  EXPECT_EQ(count(src, "// corners"), 4);
  EXPECT_EQ(src.find("float4"), std::string::npos);
}

TEST(CudaCodegen, LoadingPatternsMatchFigSix) {
  const LaunchConfig cfg{32, 8, 1, 1, 4};
  const std::string full =
      generate_kernel(spec(Method::InPlaneFullSlice, 2, cfg));
  EXPECT_EQ(count(full, "// full slice"), 1);
  EXPECT_EQ(count(full, "reinterpret_cast"), 2);  // one vectorised region

  const std::string horizontal =
      generate_kernel(spec(Method::InPlaneHorizontal, 2, cfg));
  EXPECT_NE(horizontal.find("// merged left/right + interior"), std::string::npos);
  EXPECT_EQ(count(horizontal, "// top strip"), 1);
  EXPECT_EQ(count(horizontal, "// corners"), 0);  // no corner loads

  const std::string vertical =
      generate_kernel(spec(Method::InPlaneVertical, 2, cfg));
  EXPECT_NE(vertical.find("// merged top/bottom + interior"), std::string::npos);
  EXPECT_EQ(count(vertical, "column-major"), 2);  // left + right halos

  const std::string classical =
      generate_kernel(spec(Method::InPlaneClassical, 2, cfg));
  EXPECT_EQ(count(classical, "// corners"), 4);
  EXPECT_EQ(classical.find("reinterpret_cast"), std::string::npos);  // scalar only
}

TEST(CudaCodegen, BlockingConstantsAreInlined) {
  const std::string src =
      generate_kernel(spec(Method::InPlaneFullSlice, 1, {128, 2, 2, 8, 2}));
  EXPECT_NE(src.find("constexpr int kTx = 128, kTy = 2;"), std::string::npos);
  EXPECT_NE(src.find("constexpr int kRx = 2, kRy = 8;"), std::string::npos);
  EXPECT_NE(src.find("float2"), std::string::npos);
}

TEST(CudaCodegen, DoublePrecisionUsesDoubleEverywhere) {
  const std::string src =
      generate_kernel(spec(Method::InPlaneFullSlice, 2, {32, 4, 1, 1, 2}, true));
  EXPECT_NE(src.find("__shared__ double tile"), std::string::npos);
  EXPECT_NE(src.find("double2"), std::string::npos);
  EXPECT_EQ(src.find("float"), std::string::npos);
}

TEST(CudaCodegen, HarnessImplementsSectionIVBVerification) {
  const auto s = spec(Method::InPlaneFullSlice, 2, {64, 4, 1, 2, 4});
  const std::string harness = generate_host_harness(s, {256, 256, 64});
  EXPECT_NE(harness.find("cudaMalloc"), std::string::npos);
  EXPECT_NE(harness.find("cudaEventElapsedTime"), std::string::npos);
  EXPECT_NE(harness.find("max_err"), std::string::npos);  // CPU verification
  EXPECT_NE(harness.find("MPoint/s"), std::string::npos);
  EXPECT_NE(harness.find("const dim3 block(64, 4);"), std::string::npos);
  // grid covers the extent with the (TX*RX, TY*RY) tiles.
  EXPECT_NE(harness.find("const dim3 grid(NX / 64, NY / 8);"), std::string::npos);
}

TEST(CudaCodegen, FullFileIsSelfContained) {
  const auto s = spec(Method::ForwardPlane, 1, {32, 16, 1, 1, 1});
  const std::string file = generate_file(s, {128, 128, 32});
  EXPECT_NE(file.find("#include <cuda_runtime.h>"), std::string::npos);
  EXPECT_NE(file.find("int main()"), std::string::npos);
  EXPECT_NE(file.find("run_" + s.name()), std::string::npos);
  // Braces balance (a cheap structural sanity check on the emitter).
  EXPECT_EQ(count(file, "{"), count(file, "}"));
}

TEST(CudaCodegen, TemporalNameAndValidation) {
  auto s = spec(Method::InPlaneFullSlice, 2, {64, 4, 2, 2, 4});
  s.config.tb = 3;
  EXPECT_EQ(s.name(), "inplane_fullslice_r2_t64x4_r2x2_v4_sp_tb3");
  auto bad_method = spec(Method::ForwardPlane, 2, {32, 16, 1, 1, 1});
  bad_method.config.tb = 2;
  EXPECT_THROW(bad_method.validate(), std::invalid_argument);
  auto bad_degree = spec(Method::InPlaneFullSlice, 2, {32, 4, 1, 1, 1});
  bad_degree.config.tb = 0;
  EXPECT_THROW(bad_degree.validate(), std::invalid_argument);
}

TEST(CudaCodegen, TemporalKernelHasStagedStructure) {
  auto s = spec(Method::InPlaneFullSlice, 1, {16, 8, 2, 1, 1});
  s.config.tb = 3;
  const std::string src = generate_kernel(s);
  // Degree and ring constants.
  EXPECT_NE(src.find("constexpr int TB = 3;"), std::string::npos);
  EXPECT_NE(src.find("__shared__ float slice[kSliceH * kSliceRow];"),
            std::string::npos);
  EXPECT_NE(src.find("__shared__ float ring1["), std::string::npos);
  EXPECT_NE(src.find("__shared__ float ring2["), std::string::npos);
  EXPECT_EQ(src.find("ring3"), std::string::npos);  // only TB-1 rings
  // Extra parameters for the frozen-boundary test.
  EXPECT_NE(src.find("int nx, int ny)"), std::string::npos);
  // Stage 1 queue recurrence over the extended region, ring handoffs,
  // final 3D stencil, and the deepened sweep.
  EXPECT_NE(src.find("q[i][d] += c[d + 1] * cur;"), std::string::npos);
  EXPECT_NE(src.find("interior(x0 + ex, y0 + ey, j1) ? q[i][R - 1] : back[i][R - 1]"),
            std::string::npos);
  EXPECT_NE(src.find("if (j1 >= 0) ring1_at(ex, ey, j1) = emit;"), std::string::npos);
  EXPECT_NE(src.find("ring1_at(gx, gy, js - m) + ring1_at(gx, gy, js + m)"),
            std::string::npos);
  EXPECT_NE(src.find("ring2_at(cx, cy, j - m) + ring2_at(cx, cy, j + m)"),
            std::string::npos);
  EXPECT_NE(src.find("for (int k = 0; k < nz + TB * R; ++k)"), std::string::npos);
  // TB + 1 barriers per plane (load, stage handoffs, store) plus one
  // after the ring preseed.
  EXPECT_EQ(count(src, "__syncthreads();"), 5);
  EXPECT_EQ(count(src, "{"), count(src, "}"));
}

TEST(CudaCodegen, TemporalDegreeTwoHasNoIntermediateStage) {
  auto s = spec(Method::InPlaneFullSlice, 2, {32, 4, 1, 1, 1}, true);
  s.config.tb = 2;
  const std::string src = generate_kernel(s);
  EXPECT_NE(src.find("__shared__ double slice"), std::string::npos);
  EXPECT_NE(src.find("__shared__ double ring1["), std::string::npos);
  EXPECT_EQ(src.find("ring2"), std::string::npos);
  EXPECT_EQ(src.find("forward-plane update"), std::string::npos);
  EXPECT_EQ(count(src, "__syncthreads();"), 4);  // TB + 1 per plane + preseed
  EXPECT_EQ(count(src, "{"), count(src, "}"));
}

TEST(CudaCodegen, TemporalHarnessChainsFrozenHaloReference) {
  auto s = spec(Method::InPlaneFullSlice, 1, {32, 4, 1, 1, 1});
  s.config.tb = 2;
  const std::string harness = generate_host_harness(s, {64, 32, 16});
  EXPECT_NE(harness.find("constexpr int TB = 2;"), std::string::npos);
  EXPECT_NE(harness.find("constexpr int H = TB * R;"), std::string::npos);
  EXPECT_NE(harness.find("const long origin = H + H * pitch + H * plane;"),
            std::string::npos);
  EXPECT_NE(harness.find("for (int step = 0; step < TB; ++step)"), std::string::npos);
  EXPECT_NE(harness.find("ref.swap(nxt);"), std::string::npos);
  EXPECT_NE(harness.find("NZ, pitch, plane, NX, NY);"), std::string::npos);
  // Throughput counts TB point updates per swept point.
  EXPECT_NE(harness.find("double(NX) * NY * NZ * TB"), std::string::npos);
}

TEST(CudaCodegen, BracesBalanceAcrossAllMethods) {
  for (Method m : {Method::ForwardPlane, Method::InPlaneClassical,
                   Method::InPlaneVertical, Method::InPlaneHorizontal,
                   Method::InPlaneFullSlice}) {
    for (int r : {1, 4}) {
      const std::string src = generate_kernel(spec(m, r, {32, 4, 2, 2, 1}));
      EXPECT_EQ(count(src, "{"), count(src, "}"))
          << kernels::to_string(m) << " r" << r;
    }
  }
}

TEST(CudaCodegen, TemporalFilesBalanceAcrossDegrees) {
  for (int tb : {2, 3, 4}) {
    for (int r : {1, 2}) {
      auto s = spec(Method::InPlaneFullSlice, r, {16, 4, 1, 1, 1});
      s.config.tb = tb;
      const std::string file = generate_file(s, {32, 16, 16});
      EXPECT_EQ(count(file, "{"), count(file, "}")) << "tb" << tb << " r" << r;
      EXPECT_EQ(count(file, "__syncthreads();"), tb + 2) << "tb" << tb;
    }
  }
}

}  // namespace
}  // namespace inplane::codegen
