// The parallel execution engine: the work-stealing thread pool itself,
// the determinism guarantee of the parallel runner (grids and TraceStats
// bit-identical for any thread count), and thread-count independence of
// the tuners.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "autotune/tuner.hpp"
#include "core/thread_pool.hpp"
#include "kernels/runner.hpp"

namespace inplane {
namespace {

using gpusim::DeviceSpec;
using gpusim::ExecMode;
using gpusim::TraceStats;
using kernels::LaunchConfig;
using kernels::Method;

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, ForEachRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each(hits.size(), 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ForEachZeroAndOneItems) {
  ThreadPool pool(2);
  int calls = 0;
  pool.for_each(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_each(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedForEachDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer items forces queueing
  std::atomic<int> total{0};
  pool.for_each(4, 4, [&](std::size_t) {
    pool.for_each(8, 4,
                  [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ForEachPropagatesExceptionsAndCancels) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.for_each(1000, 4,
                    [&](std::size_t i) {
                      executed.fetch_add(1, std::memory_order_relaxed);
                      if (i == 3) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // Cancellation drains the remaining items without running them.
  EXPECT_LT(executed.load(), 1000);
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < 16) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ExecPolicy, Resolution) {
  EXPECT_EQ(ExecPolicy{1}.concurrency(), 1u);
  EXPECT_TRUE(ExecPolicy{1}.serial());
  EXPECT_EQ(ExecPolicy{6}.concurrency(), 6u);
  EXPECT_GE(ExecPolicy{}.concurrency(), 1u);
}

// ------------------------------------------------------ runner determinism --

bool same_stats(const TraceStats& a, const TraceStats& b) {
  return a.load_instrs == b.load_instrs && a.store_instrs == b.store_instrs &&
         a.load_transactions == b.load_transactions &&
         a.store_transactions == b.store_transactions &&
         a.bytes_requested_ld == b.bytes_requested_ld &&
         a.bytes_transferred_ld == b.bytes_transferred_ld &&
         a.bytes_requested_st == b.bytes_requested_st &&
         a.bytes_transferred_st == b.bytes_transferred_st &&
         a.smem_instrs == b.smem_instrs && a.smem_replays == b.smem_replays &&
         a.compute_instrs == b.compute_instrs && a.flops == b.flops &&
         a.syncs == b.syncs;
}

template <typename T>
void expect_run_kernel_thread_count_invariant(Method method) {
  const Extent3 extent{64, 32, 9};
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const LaunchConfig cfg{32, 4, 1, 2, 1};
  const auto kernel = kernels::make_kernel<T>(method, cs, cfg);
  const auto dev = DeviceSpec::geforce_gtx580();

  Grid3<T> in = kernels::make_grid_for(*kernel, extent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.1 * i) + 0.05 * j + 0.02 * k * k);
  });

  Grid3<T> out_serial = kernels::make_grid_for(*kernel, extent);
  out_serial.fill(static_cast<T>(-1));
  const TraceStats serial = kernels::run_kernel(*kernel, in, out_serial, dev,
                                                ExecMode::Both, ExecPolicy{1});

  for (int threads : {2, 4, 8}) {
    Grid3<T> out_par = kernels::make_grid_for(*kernel, extent);
    out_par.fill(static_cast<T>(-1));
    const TraceStats par = kernels::run_kernel(*kernel, in, out_par, dev,
                                               ExecMode::Both, ExecPolicy{threads});
    EXPECT_TRUE(same_stats(serial, par)) << "threads=" << threads;
    // Bit-identical output storage, halos included.
    EXPECT_EQ(std::memcmp(out_serial.raw(), out_par.raw(),
                          out_serial.allocated() * sizeof(T)),
              0)
        << "threads=" << threads;
  }
}

TEST(ParallelRunner, InPlaneFullSliceIsThreadCountInvariant) {
  expect_run_kernel_thread_count_invariant<float>(Method::InPlaneFullSlice);
  expect_run_kernel_thread_count_invariant<double>(Method::InPlaneFullSlice);
}

TEST(ParallelRunner, ForwardPlaneIsThreadCountInvariant) {
  expect_run_kernel_thread_count_invariant<float>(Method::ForwardPlane);
}

TEST(ParallelRunner, ClassicalIsThreadCountInvariant) {
  expect_run_kernel_thread_count_invariant<float>(Method::InPlaneClassical);
}

// ------------------------------------------------------- tuner determinism --

TEST(ParallelTuner, ExhaustiveBestIsThreadCountIndependent) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const Extent3 grid{512, 512, 256};
  const autotune::TuneResult serial = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, grid, {}, ExecPolicy{1});
  const autotune::TuneResult par = autotune::exhaustive_tune<float>(
      Method::InPlaneFullSlice, cs, dev, grid, {}, ExecPolicy{4});
  ASSERT_TRUE(serial.found() && par.found());
  EXPECT_EQ(serial.candidates, par.candidates);
  EXPECT_EQ(serial.executed, par.executed);
  EXPECT_EQ(serial.best.config.to_string(), par.best.config.to_string());
  // The timing numbers come from the same deterministic model: bitwise equal.
  EXPECT_EQ(serial.best.timing.mpoints_per_s, par.best.timing.mpoints_per_s);
  EXPECT_EQ(serial.best.timing.seconds, par.best.timing.seconds);
  ASSERT_EQ(serial.entries.size(), par.entries.size());
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    EXPECT_EQ(serial.entries[i].config.to_string(), par.entries[i].config.to_string());
    EXPECT_EQ(serial.entries[i].timing.mpoints_per_s,
              par.entries[i].timing.mpoints_per_s);
    EXPECT_EQ(serial.entries[i].model_mpoints, par.entries[i].model_mpoints);
  }
}

TEST(ParallelTuner, ModelGuidedBestIsThreadCountIndependent) {
  const auto dev = DeviceSpec::geforce_gtx680();
  const StencilCoeffs cs = StencilCoeffs::diffusion(3);
  const Extent3 grid{512, 512, 256};
  const autotune::TuneResult serial = autotune::model_guided_tune<float>(
      Method::InPlaneFullSlice, cs, dev, grid, 0.1, {}, ExecPolicy{1});
  const autotune::TuneResult par = autotune::model_guided_tune<float>(
      Method::InPlaneFullSlice, cs, dev, grid, 0.1, {}, ExecPolicy{4});
  ASSERT_TRUE(serial.found() && par.found());
  EXPECT_EQ(serial.executed, par.executed);
  EXPECT_EQ(serial.best.config.to_string(), par.best.config.to_string());
  EXPECT_EQ(serial.best.timing.mpoints_per_s, par.best.timing.mpoints_per_s);
}

}  // namespace
}  // namespace inplane
