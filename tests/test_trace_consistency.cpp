// Cross-validation of the timing path: the steady-state single-block
// trace that estimate_timing consumes must be consistent with a full
// whole-grid execution's aggregate trace — per-plane counters times blocks
// times planes, within the pipeline fill/drain slack.  This is the check
// that the "sample one block, extrapolate" timing shortcut is sound.

#include <gtest/gtest.h>

#include "kernels/runner.hpp"

namespace inplane::kernels {
namespace {

using gpusim::DeviceSpec;
using gpusim::ExecMode;
using gpusim::TraceStats;

struct ConsistencyCase {
  Method method;
  int order;
  LaunchConfig cfg;
};

std::string cc_name(const testing::TestParamInfo<ConsistencyCase>& info) {
  std::string m = to_string(info.param.method);
  for (char& ch : m) {
    if (ch == '-') ch = '_';
  }
  return m + "_o" + std::to_string(info.param.order) + "_t" +
         std::to_string(info.param.cfg.tx) + "x" + std::to_string(info.param.cfg.ty);
}

class TraceConsistency : public testing::TestWithParam<ConsistencyCase> {};

TEST_P(TraceConsistency, SampledPlaneExtrapolatesToFullRun) {
  const auto [method, order, cfg] = GetParam();
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const auto kernel = make_kernel<float>(method, cs, cfg);
  const auto dev = DeviceSpec::geforce_gtx580();
  const Extent3 extent{64, 32, 16};
  const int r = order / 2;

  Grid3<float> in = make_grid_for(*kernel, extent);
  Grid3<float> out = make_grid_for(*kernel, extent);
  in.fill_with_halo([](int i, int j, int k) { return float(i - j + k); });
  const TraceStats full = run_kernel(*kernel, in, out, dev, ExecMode::Both);
  const TraceStats plane = kernel->trace_plane(dev, extent);

  const double blocks = double(extent.nx / cfg.tile_w()) * (extent.ny / cfg.tile_h());
  // Sweep steps per block: nz for forward-plane, nz + r for in-plane.
  const double sweep = method == Method::ForwardPlane ? extent.nz : extent.nz + r;
  // Slack: priming differs from steady state — the forward pipeline
  // preloads 2r centre planes, the in-plane back history r — so allow up
  // to (2r+1) extra tile-planes of traffic per block on top of a small
  // relative band.
  const double slack = 0.05;
  const double priming = blocks * double(cfg.tile_w()) * cfg.tile_h() *
                         (2.0 * r + 1.0) * 8.0;

  const auto close = [&](std::uint64_t whole, std::uint64_t per_plane) {
    const double predicted = static_cast<double>(per_plane) * blocks * sweep;
    EXPECT_NEAR(static_cast<double>(whole), predicted, predicted * slack + priming)
        << "per-plane " << per_plane << " blocks " << blocks << " sweep " << sweep;
  };
  close(full.bytes_transferred_ld, plane.bytes_transferred_ld);
  close(full.bytes_requested_ld, plane.bytes_requested_ld);
  close(full.smem_instrs, plane.smem_instrs);
  close(full.compute_instrs, plane.compute_instrs);
  close(full.flops, plane.flops);
  // Stores are exact: every interior point exactly once.
  EXPECT_EQ(full.bytes_requested_st, extent.volume() * 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TraceConsistency,
    testing::ValuesIn(std::vector<ConsistencyCase>{
        {Method::ForwardPlane, 2, {32, 4, 1, 1, 1}},
        {Method::ForwardPlane, 6, {32, 8, 1, 2, 1}},
        {Method::InPlaneFullSlice, 2, {32, 4, 1, 1, 4}},
        {Method::InPlaneFullSlice, 6, {16, 4, 2, 2, 2}},
        {Method::InPlaneHorizontal, 4, {32, 4, 1, 2, 4}},
        {Method::InPlaneVertical, 4, {32, 8, 1, 1, 4}},
        {Method::InPlaneClassical, 2, {16, 8, 2, 1, 1}},
    }),
    cc_name);

// Boundary blocks must trace identically to interior blocks (the timing
// sampler picks block (0,0); if edges differed the extrapolation would be
// biased).  We verify by comparing aggregate whole-grid traffic across two
// grids whose block counts differ only in boundary share.
TEST(TraceConsistency, UniformAcrossBlocks) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const LaunchConfig cfg{16, 4, 1, 1, 2};
  const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, cs, cfg);
  const auto dev = DeviceSpec::tesla_c2070();

  const auto per_block_bytes = [&](Extent3 extent) {
    Grid3<float> in = make_grid_for(*kernel, extent);
    Grid3<float> out = make_grid_for(*kernel, extent);
    const TraceStats t = run_kernel(*kernel, in, out, dev, ExecMode::Both);
    const double blocks =
        double(extent.nx / cfg.tile_w()) * (extent.ny / cfg.tile_h());
    return static_cast<double>(t.bytes_transferred_ld) / blocks;
  };
  // 2x2 blocks (all boundary) vs 4x4 blocks (mixed): identical per-block
  // traffic if boundary handling is uniform.
  EXPECT_DOUBLE_EQ(per_block_bytes({32, 8, 12}), per_block_bytes({64, 16, 12}));
}

}  // namespace
}  // namespace inplane::kernels
