// Unit tests for the metrics registry: instrument semantics, the runtime
// collection switch, snapshot determinism and the address-stability
// guarantees the cached instrumentation sites rely on.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"

namespace {

using namespace inplane;

// Every test toggles the process-wide switch; restore what it found so
// tests compose regardless of INPLANE_METRICS in the environment.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics::enabled();
    metrics::set_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(MetricsTest, RecordingIsCompiledInByDefault) {
  // The library is built without INPLANE_METRICS_DISABLED; the bench
  // harness and the trace property tests depend on that.
  EXPECT_TRUE(metrics::kCompiledIn);
}

TEST_F(MetricsTest, CounterAddsAndResets) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, CounterIgnoresAddsWhileDisabled) {
  metrics::Counter c;
  metrics::set_enabled(false);
  EXPECT_FALSE(metrics::enabled());
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  metrics::set_enabled(true);
  EXPECT_TRUE(metrics::enabled());
  c.add(100);
  EXPECT_EQ(c.value(), 100u);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  metrics::Gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  metrics::set_enabled(false);
  g.set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  metrics::set_enabled(true);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramSummaryIsExact) {
  metrics::Histogram h;
  h.record(1.5);
  h.record(0.5);
  h.record(2.0);
  const auto s = h.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_NEAR(s.mean(), 4.0 / 3.0, 1e-12);
}

TEST_F(MetricsTest, EmptyHistogramReportsZeros) {
  metrics::Histogram h;
  const auto s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);  // not the +infinity seed
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST_F(MetricsTest, HistogramClampsNegativeAndNonFinite) {
  metrics::Histogram h;
  h.record(-1.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  const auto s = h.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST_F(MetricsTest, HistogramResetClearsSeeds) {
  metrics::Histogram h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.summary().count, 0u);
  h.record(2.0);
  const auto s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST_F(MetricsTest, ScopedTimerRecordsOneWallAndOneCpuSample) {
  metrics::Timer t;
  {
    metrics::ScopedTimer scope(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto wall = t.wall().summary();
  const auto cpu = t.cpu().summary();
  EXPECT_EQ(wall.count, 1u);
  EXPECT_EQ(cpu.count, 1u);
  EXPECT_GE(wall.sum, 0.002);  // at least the sleep
  EXPECT_GE(cpu.sum, 0.0);     // sleeping burns little CPU
  EXPECT_LE(cpu.sum, wall.sum + 0.001);
}

TEST_F(MetricsTest, ScopedTimerIsInertWhileDisabled) {
  metrics::Timer t;
  metrics::set_enabled(false);
  {
    metrics::ScopedTimer scope(t);
  }
  metrics::set_enabled(true);
  EXPECT_EQ(t.wall().summary().count, 0u);
  EXPECT_EQ(t.cpu().summary().count, 0u);
}

TEST_F(MetricsTest, RegistryInternsStableAddresses) {
  metrics::Registry reg;
  metrics::Counter& a1 = reg.counter("layer.a");
  metrics::Counter& a2 = reg.counter("layer.a");
  metrics::Counter& b = reg.counter("layer.b");
  EXPECT_EQ(&a1, &a2);
  EXPECT_NE(&a1, &b);
  // Reset zeroes values but keeps the instruments seated, so cached
  // references held by instrumentation sites stay valid.
  a1.add(7);
  reg.reset();
  EXPECT_EQ(&reg.counter("layer.a"), &a1);
  EXPECT_EQ(a1.value(), 0u);
  a1.add(3);
  EXPECT_EQ(reg.counter("layer.a").value(), 3u);
}

TEST_F(MetricsTest, RegistryKindsAreIndependentNamespaces) {
  metrics::Registry reg;
  reg.counter("x").add(1);
  reg.gauge("x").set(2.0);
  reg.histogram("x").record(3.0);
  EXPECT_EQ(reg.counter("x").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 2.0);
  EXPECT_EQ(reg.histogram("x").summary().count, 1u);
}

TEST_F(MetricsTest, SnapshotIsSortedAndTimersExpand) {
  metrics::Registry reg;
  reg.counter("b.count").add(5);
  reg.gauge("a.level").set(0.5);
  reg.histogram("c.dist").record(1.0);
  { metrics::ScopedTimer scope(reg.timer("d.span")); }

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 5u);  // timer contributes .wall_s and .cpu_s
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  EXPECT_EQ(snap[0].name, "a.level");
  EXPECT_EQ(snap[0].kind, metrics::SnapshotEntry::Kind::Gauge);
  EXPECT_EQ(snap[1].name, "b.count");
  EXPECT_EQ(snap[1].kind, metrics::SnapshotEntry::Kind::Counter);
  EXPECT_DOUBLE_EQ(snap[1].value, 5.0);
  EXPECT_EQ(snap[2].name, "c.dist");
  EXPECT_EQ(snap[2].kind, metrics::SnapshotEntry::Kind::Histogram);
  EXPECT_EQ(snap[3].name, "d.span.cpu_s");
  EXPECT_EQ(snap[4].name, "d.span.wall_s");
  EXPECT_EQ(snap[4].histogram.count, 1u);
}

TEST_F(MetricsTest, GlobalRegistryIsOneInstance) {
  metrics::Registry& g1 = metrics::Registry::global();
  metrics::Registry& g2 = metrics::Registry::global();
  EXPECT_EQ(&g1, &g2);
}

TEST_F(MetricsTest, ConcurrentCounterAddsAreLossless) {
  metrics::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(MetricsTest, ConcurrentHistogramRecordsAreLossless) {
  metrics::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kRecords = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) h.record(static_cast<double>(t + 1));
    });
  }
  for (auto& t : threads) t.join();
  const auto s = h.summary();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kThreads));
  EXPECT_DOUBLE_EQ(s.sum, kRecords * (1.0 + 2.0 + 3.0 + 4.0));
}

}  // namespace
