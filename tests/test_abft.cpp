// Online SDC detection and surgical recovery: the ABFT plane-checksum
// layer must (a) never flag an honest run, (b) detect injected silent
// corruption online — no CPU reference pass — localize it to the guilty
// blocks, and (c) repair by recomputing only those blocks, leaving the
// output bit-identical to a fault-free run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "gpusim/fault_injector.hpp"
#include "kernels/abft.hpp"
#include "kernels/resources.hpp"
#include "kernels/runner.hpp"

namespace inplane {
namespace {

using gpusim::DeviceSpec;
using gpusim::FaultInjector;
using gpusim::FaultPlan;
using kernels::LaunchConfig;
using kernels::Method;
using kernels::RunOptions;
using kernels::RunReport;

constexpr Extent3 kExtent{64, 32, 9};

// 32x16 tiles -> a 2x2 block grid, valid for every loading variant.
constexpr LaunchConfig kConfig{16, 8, 2, 2, 1};

const Method kAllMethods[] = {Method::ForwardPlane, Method::InPlaneClassical,
                              Method::InPlaneVertical, Method::InPlaneHorizontal,
                              Method::InPlaneFullSlice};

template <typename T>
Grid3<T> seeded_input(const kernels::IStencilKernel<T>& kernel) {
  Grid3<T> in = kernels::make_grid_for(kernel, kExtent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(std::sin(0.1 * i) + 0.05 * j + 0.02 * k * k);
  });
  return in;
}

template <typename T>
bool grids_bit_identical(const Grid3<T>& a, const Grid3<T>& b) {
  return a.allocated() == b.allocated() &&
         std::memcmp(a.raw(), b.raw(), a.allocated() * sizeof(T)) == 0;
}

// ------------------------------------------------------- honest runs pass --

TEST(AbftCleanRuns, NoFalsePositiveAcrossVariantsAndOrders) {
  const auto dev = DeviceSpec::geforce_gtx580();
  for (const Method method : kAllMethods) {
    for (int order : {2, 4, 6, 8}) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto kernel = kernels::make_kernel<float>(method, cs, kConfig);
      ASSERT_EQ(kernel->validate(dev, kExtent), std::nullopt)
          << to_string(method) << " order " << order;
      const Grid3<float> in = seeded_input(*kernel);
      Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
      RunOptions ro;
      ro.abft.enabled = true;
      const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
      ASSERT_TRUE(report.status.ok())
          << to_string(method) << " order " << order << ": "
          << report.status.to_string();
      EXPECT_TRUE(report.abft.enabled);
      EXPECT_GT(report.abft.planes_checked, 0u);
      EXPECT_EQ(report.abft.planes_flagged, 0u)
          << to_string(method) << " order " << order << " false-positive";
      EXPECT_EQ(report.abft.blocks_repaired, 0);
      EXPECT_EQ(report.attempts, 1);
      // No CPU reference pass ran — the checksums vouched for the run.
      EXPECT_FALSE(report.verified);
    }
  }
}

TEST(AbftCleanRuns, DoublePrecisionIsAlsoClean) {
  const auto dev = DeviceSpec::tesla_c2070();
  for (int order : {2, 8}) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const auto kernel =
        kernels::make_kernel<double>(Method::InPlaneFullSlice, cs, kConfig);
    const Grid3<double> in = seeded_input(*kernel);
    Grid3<double> out = kernels::make_grid_for(*kernel, kExtent);
    RunOptions ro;
    ro.abft.enabled = true;
    const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
    ASSERT_TRUE(report.status.ok()) << report.status.to_string();
    EXPECT_EQ(report.abft.planes_flagged, 0u);
  }
}

// --------------------------------- detect + surgically repair corruption --

TEST(AbftRepair, BitFlipsDetectedAndRepairedAcrossVariantsAndOrders) {
  const auto dev = DeviceSpec::geforce_gtx580();
  for (const Method method : kAllMethods) {
    for (int order : {2, 4, 6, 8}) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const auto kernel = kernels::make_kernel<float>(method, cs, kConfig);
      const Grid3<float> in = seeded_input(*kernel);

      // Fault-free reference for the bit-identity claim.
      Grid3<float> clean = kernels::make_grid_for(*kernel, kExtent);
      clean.fill(0.0f);
      kernels::run_kernel(*kernel, in, clean, dev);

      FaultInjector injector(FaultPlan::parse("seed=11; bitflip:p=1e-3,bit=30"));
      Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
      out.fill(0.0f);
      RunOptions ro;
      ro.faults = &injector;
      ro.abft.enabled = true;
      const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);

      ASSERT_GT(injector.event_count(), 0u)
          << to_string(method) << " order " << order
          << ": plan injected nothing — test is vacuous";
      ASSERT_TRUE(report.status.ok())
          << to_string(method) << " order " << order << ": "
          << report.status.to_string();
      // Detected online and repaired surgically on the first attempt: no
      // retry burned, no CPU reference consulted.
      EXPECT_EQ(report.attempts, 1) << to_string(method) << " order " << order;
      EXPECT_FALSE(report.verified);
      EXPECT_GT(report.abft.planes_flagged, 0u)
          << to_string(method) << " order " << order;
      EXPECT_GT(report.abft.blocks_repaired, 0);
      EXPECT_FALSE(report.abft.events.empty());
      for (const kernels::SdcEvent& e : report.abft.events) {
        EXPECT_TRUE(e.repaired);
      }
      EXPECT_TRUE(grids_bit_identical(out, clean))
          << to_string(method) << " order " << order
          << ": repaired output differs from the fault-free run";
    }
  }
}

TEST(AbftRepair, StuckLoadsAreContainedToo) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel = kernels::make_kernel<float>(Method::InPlaneVertical, cs, kConfig);
  const Grid3<float> in = seeded_input(*kernel);

  Grid3<float> clean = kernels::make_grid_for(*kernel, kExtent);
  clean.fill(0.0f);
  kernels::run_kernel(*kernel, in, clean, dev);

  FaultInjector injector(FaultPlan::parse("seed=23; stuck:p=2e-3"));
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
  out.fill(0.0f);
  RunOptions ro;
  ro.faults = &injector;
  ro.abft.enabled = true;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  ASSERT_GT(injector.event_count(), 0u);
  ASSERT_TRUE(report.status.ok()) << report.status.to_string();
  EXPECT_GT(report.abft.planes_flagged, 0u);
  EXPECT_GT(report.abft.blocks_repaired, 0);
  EXPECT_TRUE(grids_bit_identical(out, clean));
}

TEST(AbftRepair, DeterministicAcrossThreadCounts) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(3);
  const auto kernel =
      kernels::make_kernel<float>(Method::InPlaneFullSlice, cs, kConfig);
  const Grid3<float> in = seeded_input(*kernel);
  const FaultPlan plan = FaultPlan::parse("seed=31; bitflip:p=1e-3,bit=30");

  auto run_with = [&](int threads, RunReport& report) {
    FaultInjector injector(plan);
    Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
    out.fill(0.0f);
    RunOptions ro;
    ro.faults = &injector;
    ro.abft.enabled = true;
    ro.policy = ExecPolicy{threads};
    report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
    return out;
  };

  RunReport serial_report;
  const Grid3<float> serial = run_with(1, serial_report);
  ASSERT_TRUE(serial_report.status.ok());
  ASSERT_GT(serial_report.abft.planes_flagged, 0u);
  for (int threads : {2, 4}) {
    RunReport par_report;
    const Grid3<float> par = run_with(threads, par_report);
    ASSERT_TRUE(par_report.status.ok());
    EXPECT_EQ(par_report.abft.planes_flagged, serial_report.abft.planes_flagged);
    EXPECT_EQ(par_report.abft.blocks_repaired, serial_report.abft.blocks_repaired);
    EXPECT_TRUE(grids_bit_identical(par, serial));
  }
}

// ------------------------------------------------- guards and fallbacks --

TEST(AbftGuards, MismatchedLayoutsAreRejected) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const auto kernel =
      kernels::make_kernel<float>(Method::InPlaneClassical, cs, kConfig);
  const Grid3<float> in = seeded_input(*kernel);
  // A wider halo is functionally fine but shifts every padded offset, so
  // the sink's store-decoded weights would not match the prediction's.
  Grid3<float> out(kExtent, kernel->radius() + 1);
  RunOptions ro;
  ro.abft.enabled = true;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  EXPECT_EQ(report.status.code, ErrorCode::InvalidConfig);
}

TEST(AbftGuards, DeniedRepairBudgetFallsBackToFullRetry) {
  const auto dev = DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const auto kernel =
      kernels::make_kernel<float>(Method::InPlaneClassical, cs, kConfig);
  const Grid3<float> in = seeded_input(*kernel);

  // Fault only the first attempt; a 1-byte budget denies the repair
  // scratch, so the run must fall back to a clean full retry.
  FaultInjector injector(
      FaultPlan::parse("seed=11; bitflip:p=1e-3,bit=30,attempt=0"));
  MemBudget budget(1);
  Grid3<float> out = kernels::make_grid_for(*kernel, kExtent);
  out.fill(0.0f);
  RunOptions ro;
  ro.faults = &injector;
  ro.abft.enabled = true;
  ro.mem_budget = &budget;
  const RunReport report = kernels::run_kernel_guarded(*kernel, in, out, dev, ro);
  ASSERT_TRUE(report.status.ok()) << report.status.to_string();
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.abft.repairs_failed, 1);
  EXPECT_GE(budget.denied(), 1u);

  Grid3<float> clean = kernels::make_grid_for(*kernel, kExtent);
  clean.fill(0.0f);
  kernels::run_kernel(*kernel, in, clean, dev);
  EXPECT_TRUE(grids_bit_identical(out, clean));
}

}  // namespace
}  // namespace inplane
