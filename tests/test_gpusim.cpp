// gpusim substrate units: the warp coalescer, shared-memory banking,
// global memory mapping, trace accounting, and the BlockCtx SIMT facade.

#include <gtest/gtest.h>

#include "gpusim/block_ctx.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/global_memory.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/trace.hpp"

namespace inplane::gpusim {
namespace {

std::array<LaneAccess, 32> lanes_contiguous(std::uint64_t base, std::uint32_t bytes) {
  std::array<LaneAccess, 32> lanes;
  for (int i = 0; i < 32; ++i) {
    lanes[static_cast<std::size_t>(i)] = {base + static_cast<std::uint64_t>(i) * bytes,
                                          bytes, true};
  }
  return lanes;
}

// --- Coalescer ---------------------------------------------------------------

TEST(Coalescer, AlignedContiguousFloatsAreOneFermiLine) {
  const auto lanes = lanes_contiguous(0, 4);
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes_requested, 128u);
  EXPECT_EQ(r.bytes_transferred, 128u);
}

TEST(Coalescer, MisalignedContiguousFloatsCostOneExtraLine) {
  const auto lanes = lanes_contiguous(4, 4);  // shifted by one element
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_EQ(r.transactions, 2u);
  EXPECT_EQ(r.bytes_transferred, 256u);
}

TEST(Coalescer, KeplerSegmentsAreFiner) {
  const auto lanes = lanes_contiguous(4, 4);
  const CoalesceResult r = coalesce(lanes, 32);
  EXPECT_EQ(r.transactions, 5u);  // 128 B span misaligned over 32 B sectors
  EXPECT_EQ(r.bytes_transferred, 160u);
}

TEST(Coalescer, StridedColumnAccessIsOneTransactionPerLane) {
  std::array<LaneAccess, 32> lanes;
  for (int i = 0; i < 32; ++i) {
    lanes[static_cast<std::size_t>(i)] = {static_cast<std::uint64_t>(i) * 2048, 4,
                                          true};
  }
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_EQ(r.transactions, 32u);
  EXPECT_EQ(r.bytes_requested, 128u);
  EXPECT_EQ(r.bytes_transferred, 32u * 128u);
}

TEST(Coalescer, BroadcastIsOneTransaction) {
  std::array<LaneAccess, 32> lanes;
  for (auto& l : lanes) l = {1000, 4, true};
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_EQ(r.transactions, 1u);
}

TEST(Coalescer, InactiveLanesDoNotCount) {
  auto lanes = lanes_contiguous(0, 4);
  for (std::size_t i = 1; i < 32; ++i) lanes[i].active = false;
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes_requested, 4u);
}

TEST(Coalescer, AllInactiveMeansNoInstruction) {
  auto lanes = lanes_contiguous(0, 4);
  for (auto& l : lanes) l.active = false;
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_FALSE(r.any_active);
  EXPECT_EQ(r.transactions, 0u);
}

TEST(Coalescer, VectorLoadsReduceNothingInBytesButSpanSegments) {
  const auto lanes = lanes_contiguous(0, 16);  // float4 per lane
  const CoalesceResult r = coalesce(lanes, 128);
  EXPECT_EQ(r.bytes_requested, 512u);
  EXPECT_EQ(r.transactions, 4u);
  EXPECT_EQ(r.bytes_transferred, 512u);
}

TEST(Coalescer, EfficiencyNeverAboveOne) {
  for (std::uint64_t stride : {4u, 8u, 20u, 132u}) {
    std::array<LaneAccess, 32> lanes;
    for (int i = 0; i < 32; ++i) {
      lanes[static_cast<std::size_t>(i)] = {7 + static_cast<std::uint64_t>(i) * stride,
                                            4, true};
    }
    const CoalesceResult r = coalesce(lanes, 128);
    EXPECT_LE(r.bytes_requested, r.bytes_transferred) << "stride " << stride;
  }
}

TEST(Coalescer, RejectsBadSegmentSize) {
  const auto lanes = lanes_contiguous(0, 4);
  EXPECT_THROW((void)coalesce(lanes, 0), std::invalid_argument);
  EXPECT_THROW((void)coalesce(lanes, 96), std::invalid_argument);
}

// Regression: a legitimately wide warp access (many distinct segments per
// lane against a tiny segment size) used to overflow the fixed 256-entry
// buffer and abort the trace with invalid_argument.
TEST(Coalescer, WideWarpAccessDoesNotAbort) {
  std::array<LaneAccess, 32> lanes;
  for (int i = 0; i < 32; ++i) {
    // 64 bytes per lane, lanes 2048 bytes apart, 4-byte segments:
    // 16 distinct segments per lane, 512 for the warp.
    lanes[static_cast<std::size_t>(i)] = {static_cast<std::uint64_t>(i) * 2048, 64,
                                          true};
  }
  const CoalesceResult r = coalesce(lanes, 4);
  EXPECT_EQ(r.transactions, 512u);
  EXPECT_EQ(r.bytes_requested, 32u * 64u);
  EXPECT_EQ(r.bytes_transferred, 512u * 4u);
}

TEST(Coalescer, OverlappingWideLanesStillDeduplicate) {
  std::array<LaneAccess, 32> lanes;
  for (int i = 0; i < 32; ++i) {
    // Every lane covers the same 2048-byte span: 512 segments, once.
    lanes[static_cast<std::size_t>(i)] = {0, 2048, true};
  }
  const CoalesceResult r = coalesce(lanes, 4);
  EXPECT_EQ(r.transactions, 512u);
}

TEST(Coalescer, AddressWrapIsStillRejected) {
  std::array<LaneAccess, 32> lanes{};
  lanes[0] = {~std::uint64_t{0} - 2, 8, true};  // addr + bytes wraps
  EXPECT_THROW((void)coalesce(lanes, 128), std::invalid_argument);
}

// --- Shared memory ------------------------------------------------------------

std::array<SmemLaneAccess, 32> smem_lanes(std::uint32_t base, std::uint32_t stride) {
  std::array<SmemLaneAccess, 32> lanes;
  for (int i = 0; i < 32; ++i) {
    lanes[static_cast<std::size_t>(i)] = {base + static_cast<std::uint32_t>(i) * stride,
                                          4, true};
  }
  return lanes;
}

TEST(SharedMemory, ContiguousWordsAreConflictFree) {
  const SharedMemory smem(4096);
  EXPECT_EQ(smem.analyze(smem_lanes(0, 4)).replays, 0u);
}

TEST(SharedMemory, SameWordBroadcastsWithoutConflict) {
  const SharedMemory smem(4096);
  EXPECT_EQ(smem.analyze(smem_lanes(64, 0)).replays, 0u);
}

TEST(SharedMemory, PowerOfTwoStrideConflicts) {
  const SharedMemory smem(32768);
  // Stride of 32 words = every lane in the same bank: 31 replays.
  EXPECT_EQ(smem.analyze(smem_lanes(0, 128)).replays, 31u);
  // Stride of 2 words: 2-way conflict.
  EXPECT_EQ(smem.analyze(smem_lanes(0, 8)).replays, 1u);
}

TEST(SharedMemory, FunctionalReadWriteRoundTrip) {
  SharedMemory smem(256);
  const float v = 3.5f;
  smem.write(12, &v, sizeof v);
  float out = 0.0f;
  smem.read(12, &out, sizeof out);
  EXPECT_EQ(out, v);
}

TEST(SharedMemory, BoundsChecked) {
  SharedMemory smem(16);
  float v = 0.0f;
  EXPECT_THROW(smem.read(13, &v, sizeof v), std::out_of_range);
  EXPECT_THROW(smem.write(16, &v, sizeof v), std::out_of_range);
}

// --- Global memory -------------------------------------------------------------

TEST(GlobalMemory, MapsBuffersAtDisjointAlignedBases) {
  GlobalMemory gmem;
  std::vector<std::byte> a(100), b(200);
  const BufferId ia = gmem.map(a);
  const BufferId ib = gmem.map(b);
  EXPECT_EQ(gmem.base(ia) % 512, 0u);
  EXPECT_EQ(gmem.base(ib) % 512, 0u);
  EXPECT_GE(gmem.base(ib), gmem.base(ia) + 100);
}

TEST(GlobalMemory, FunctionalRoundTrip) {
  GlobalMemory gmem;
  std::vector<std::byte> buf(64);
  const BufferId id = gmem.map(buf);
  const double v = 2.25;
  gmem.write(gmem.base(id) + 16, &v, sizeof v);
  double out = 0.0;
  gmem.read(gmem.base(id) + 16, &out, sizeof out);
  EXPECT_EQ(out, v);
  EXPECT_EQ(*reinterpret_cast<double*>(buf.data() + 16), v);
}

TEST(GlobalMemory, WildAddressesThrow) {
  GlobalMemory gmem;
  std::vector<std::byte> buf(64);
  const BufferId id = gmem.map(buf);
  double v = 0.0;
  EXPECT_THROW(gmem.read(gmem.base(id) + 60, &v, sizeof v), std::out_of_range);
  EXPECT_THROW(gmem.read(0, &v, sizeof v), std::out_of_range);
}

TEST(GlobalMemory, ReadOnlyMappingRejectsWrites) {
  GlobalMemory gmem;
  const std::vector<std::byte> buf(64);
  const BufferId id = gmem.map_readonly(buf);
  double v = 1.0;
  EXPECT_NO_THROW(gmem.read(gmem.base(id), &v, sizeof v));
  EXPECT_THROW(gmem.write(gmem.base(id), &v, sizeof v), std::logic_error);
}

// --- TraceStats -----------------------------------------------------------------

TEST(TraceStats, AdditionAndScaling) {
  TraceStats a;
  a.load_instrs = 10;
  a.bytes_requested_ld = 100;
  a.bytes_transferred_ld = 200;
  a.flops = 7;
  TraceStats b = a;
  const TraceStats sum = a + b;
  EXPECT_EQ(sum.load_instrs, 20u);
  EXPECT_EQ(sum.flops, 14u);
  const TraceStats half = sum.scaled_down(2);
  EXPECT_EQ(half.load_instrs, 10u);
  EXPECT_THROW((void)sum.scaled_down(0), std::invalid_argument);
}

TEST(TraceStats, LoadEfficiencyDefinition) {
  TraceStats t;
  EXPECT_EQ(t.load_efficiency(), 1.0);  // no loads: vacuously perfect
  t.bytes_requested_ld = 50;
  t.bytes_transferred_ld = 200;
  EXPECT_DOUBLE_EQ(t.load_efficiency(), 0.25);
}

// --- BlockCtx ---------------------------------------------------------------------

TEST(BlockCtx, TraceModeCountsWithoutTouchingMemory) {
  GlobalMemory gmem;  // nothing mapped: any functional access would throw
  const DeviceSpec dev = DeviceSpec::geforce_gtx580();
  BlockCtx ctx(dev, gmem, 1024, ExecMode::Trace);
  BlockCtx::GlobalLoadLane lanes[32];
  for (int i = 0; i < 32; ++i) {
    lanes[static_cast<std::size_t>(i)] = {static_cast<std::uint64_t>(4096 + 4 * i),
                                          nullptr, 4, true};
  }
  EXPECT_NO_THROW(ctx.warp_load({lanes, 32}));
  EXPECT_EQ(ctx.stats().load_instrs, 1u);
  EXPECT_EQ(ctx.stats().load_transactions, 1u);
}

TEST(BlockCtx, BothModeMovesDataAndCounts) {
  GlobalMemory gmem;
  std::vector<std::byte> buf(4096);
  const BufferId id = gmem.map(buf);
  const DeviceSpec dev = DeviceSpec::geforce_gtx580();
  BlockCtx ctx(dev, gmem, 1024, ExecMode::Both);

  float src[32];
  for (int i = 0; i < 32; ++i) src[static_cast<std::size_t>(i)] = float(i);
  BlockCtx::GlobalStoreLane st[32];
  for (int i = 0; i < 32; ++i) {
    st[static_cast<std::size_t>(i)] = {gmem.base(id) + 4u * static_cast<unsigned>(i),
                                       &src[static_cast<std::size_t>(i)], 4, true};
  }
  ctx.warp_store({st, 32});
  EXPECT_EQ(ctx.stats().store_instrs, 1u);
  EXPECT_EQ(*reinterpret_cast<float*>(buf.data() + 4 * 7), 7.0f);

  float dst[32] = {};
  BlockCtx::GlobalLoadLane ld[32];
  for (int i = 0; i < 32; ++i) {
    ld[static_cast<std::size_t>(i)] = {gmem.base(id) + 4u * static_cast<unsigned>(i),
                                       &dst[static_cast<std::size_t>(i)], 4, true};
  }
  ctx.warp_load({ld, 32});
  EXPECT_EQ(dst[13], 13.0f);
}

TEST(BlockCtx, EmptyWarpIsElided) {
  GlobalMemory gmem;
  const DeviceSpec dev = DeviceSpec::geforce_gtx680();
  BlockCtx ctx(dev, gmem, 0, ExecMode::Trace);
  BlockCtx::GlobalLoadLane lanes[32] = {};
  ctx.warp_load({lanes, 32});
  EXPECT_EQ(ctx.stats().load_instrs, 0u);
}

TEST(BlockCtx, RejectsOversizedSmem) {
  GlobalMemory gmem;
  const DeviceSpec dev = DeviceSpec::geforce_gtx580();
  EXPECT_THROW(BlockCtx(dev, gmem, 49 * 1024, ExecMode::Trace), std::invalid_argument);
}

TEST(BlockCtx, WrongLaneCountThrows) {
  GlobalMemory gmem;
  const DeviceSpec dev = DeviceSpec::geforce_gtx580();
  BlockCtx ctx(dev, gmem, 0, ExecMode::Trace);
  BlockCtx::GlobalLoadLane lanes[16] = {};
  EXPECT_THROW(ctx.warp_load({lanes, 16}), std::invalid_argument);
}

// --- DeviceSpec --------------------------------------------------------------------

TEST(DeviceSpec, PeakNumbersMatchTableIII) {
  const DeviceSpec gtx580 = DeviceSpec::geforce_gtx580();
  EXPECT_NEAR(gtx580.peak_sp_gflops(), 1581.0, 2.0);
  EXPECT_NEAR(gtx580.peak_dp_gflops(), 198.0, 1.0);
  const DeviceSpec gtx680 = DeviceSpec::geforce_gtx680();
  EXPECT_NEAR(gtx680.peak_sp_gflops(), 3090.0, 5.0);
  EXPECT_NEAR(gtx680.peak_dp_gflops(), 129.0, 1.0);
  const DeviceSpec c2070 = DeviceSpec::tesla_c2070();
  EXPECT_NEAR(c2070.peak_sp_gflops(), 1030.0, 2.0);
  EXPECT_NEAR(c2070.peak_dp_gflops(), 515.0, 1.0);
}

TEST(DeviceSpec, PaperDevicesInOrder) {
  const auto devices = paper_devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0].name, "GeForce GTX580");
  EXPECT_EQ(devices[1].name, "GeForce GTX680");
  EXPECT_EQ(devices[2].name, "Tesla C2070");
  EXPECT_EQ(devices[1].coalesce_bytes, 32);  // Kepler L2 sectors
}

}  // namespace
}  // namespace inplane::gpusim
