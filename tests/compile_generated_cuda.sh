#!/bin/sh
# Syntax- and type-checks the generated CUDA sources with a host C++
# compiler and the cuda_runtime.h shim: the strongest validation of the
# code generator available without nvcc.
#
# usage: compile_generated_cuda.sh <generate_cuda binary> <shim dir>
set -e
GEN="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
SHIM="$(cd "$2" && pwd)"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cd "$WORK"
"$GEN" 2 8 > /dev/null

status=0
for f in cuda_out/*.cu; do
  # Rewrite the triple-chevron launch into a plain call (host compilers
  # cannot parse <<<...>>>).
  sed 's/<<<[^>]*>>>//' "$f" > "$f.cpp"
  if g++ -std=c++17 -fsyntax-only -I"$SHIM" -include cuda_runtime.h -x c++ "$f.cpp"; then
    echo "OK   $f"
  else
    echo "FAIL $f"
    status=1
  fi
done
exit $status
