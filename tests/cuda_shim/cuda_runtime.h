// Minimal CUDA shim so the generated .cu files can be *syntax- and
// type-checked* with a host C++ compiler (`g++ -fsyntax-only`) in
// environments without nvcc.  It stubs exactly the surface the generated
// kernels and harnesses use; it is NOT a CUDA implementation.
#pragma once

#include <cstddef>
#include <cstdlib>

// --- Kernel qualifiers --------------------------------------------------------
#define __global__
#define __device__
#define __host__
#define __shared__ static
#define __restrict__
#define __forceinline__ inline

// --- Built-in thread coordinates ----------------------------------------------
struct CudaShimDim3 {
  unsigned x = 1, y = 1, z = 1;
  CudaShimDim3() = default;
  CudaShimDim3(unsigned x_, unsigned y_ = 1, unsigned z_ = 1) : x(x_), y(y_), z(z_) {}
};
using dim3 = CudaShimDim3;

namespace cuda_shim {
inline dim3& threadIdx_ref() { static dim3 v; return v; }
inline dim3& blockIdx_ref() { static dim3 v; return v; }
}  // namespace cuda_shim
#define threadIdx (cuda_shim::threadIdx_ref())
#define blockIdx (cuda_shim::blockIdx_ref())

// --- Synchronisation ------------------------------------------------------------
inline void __syncthreads() {}

// --- Vector types ----------------------------------------------------------------
struct float2 { float x, y; };
struct float4 { float x, y, z, w; };
struct double2 { double x, y; };

// --- Runtime API -------------------------------------------------------------------
using cudaError_t = int;
inline constexpr cudaError_t cudaSuccess = 0;
struct cudaEvent_t_ {};
using cudaEvent_t = cudaEvent_t_*;
enum cudaMemcpyKind { cudaMemcpyHostToDevice, cudaMemcpyDeviceToHost };

template <typename T>
inline cudaError_t cudaMalloc(T** ptr, std::size_t bytes) {
  *ptr = static_cast<T*>(std::malloc(bytes));
  return cudaSuccess;
}
inline cudaError_t cudaFree(void* ptr) { std::free(ptr); return cudaSuccess; }
inline cudaError_t cudaMemcpy(void*, const void*, std::size_t, cudaMemcpyKind) {
  return cudaSuccess;
}
inline cudaError_t cudaEventCreate(cudaEvent_t*) { return cudaSuccess; }
inline cudaError_t cudaEventRecord(cudaEvent_t) { return cudaSuccess; }
inline cudaError_t cudaEventSynchronize(cudaEvent_t) { return cudaSuccess; }
inline cudaError_t cudaEventElapsedTime(float* ms, cudaEvent_t, cudaEvent_t) {
  *ms = 1.0f;
  return cudaSuccess;
}
inline const char* cudaGetErrorString(cudaError_t) { return "cudaSuccess"; }

// --- <<<grid, block>>> launch syntax -------------------------------------------------
// The shim preprocesses launches into a plain call via a helper macro the
// test harness injects with -D'KERNEL_LAUNCH_SHIM'; without nvcc the
// triple-chevron syntax itself cannot be parsed, so the compile test
// rewrites `<<<grid, block>>>` textually before invoking the compiler.
