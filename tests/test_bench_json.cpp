// Schema tests for the BENCH_<name>.json observability reports: the
// golden file pins the serialized form (key set, layout, fingerprint) so
// any schema drift is a deliberate, reviewed change plus a
// kBenchSchemaVersion bump — and the bench_diff regression gate is
// exercised end to end on synthetic trees.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "report/bench_json.hpp"

namespace {

using namespace inplane::report;

// A fully deterministic report (fixed SHA, fixed measurements) — the
// subject of the golden file and the fingerprint pin.
BenchReport golden_report() {
  BenchReport r;
  r.bench = "golden_sample";
  r.smoke = true;
  r.repo_sha = "0123456789ab";
  r.config = {{"grid", "128x64x8"}, {"orders", "2,4"}};
  r.headline = {
      {"throughput", 120.5, "mpoints/s", /*higher_is_better=*/true, /*noisy=*/false},
      {"model_gap", 5.0, "%", /*higher_is_better=*/false, /*noisy=*/false},
      {"wall", 3.25, "s", /*higher_is_better=*/false, /*noisy=*/true},
  };
  MetricSample counter;
  counter.name = "autotune.candidates_executed";
  counter.type = "counter";
  counter.value = 42.0;
  MetricSample gauge;
  gauge.name = "core.pool.depth";
  gauge.type = "gauge";
  gauge.value = 2.0;
  MetricSample hist;
  hist.name = "gpusim.launch.wall_s";
  hist.type = "histogram";
  hist.count = 3;
  hist.sum = 0.75;
  hist.min = 0.2;
  hist.max = 0.3;
  r.metrics = {counter, gauge, hist};
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string rstrip(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' || s.back() == ' ')) {
    s.pop_back();
  }
  return s;
}

// --- Json string escapes ---------------------------------------------------

TEST(Json, DecodesBmpEscapes) {
  // U+00E9 (é) and U+2603 (snowman) — 2- and 3-byte UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse("\"\\u2603\"").as_string(), "\xe2\x98\x83");
}

TEST(Json, DecodesSurrogatePairsToUtf8) {
  // U+1F600 (grinning face) = \ud83d\ude00 → 4-byte UTF-8 f0 9f 98 80.
  const Json v = Json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "\xf0\x9f\x98\x80");
  // The decoded bytes pass through the serializer raw, so the value
  // survives a dump -> parse round trip instead of being mangled.
  EXPECT_EQ(Json::parse(v.dump()).as_string(), "\xf0\x9f\x98\x80");
  // Boundary code points of the supplementary planes.
  EXPECT_EQ(Json::parse("\"\\ud800\\udc00\"").as_string(),
            "\xf0\x90\x80\x80");  // U+10000
  EXPECT_EQ(Json::parse("\"\\udbff\\udfff\"").as_string(),
            "\xf4\x8f\xbf\xbf");  // U+10FFFF
}

TEST(Json, RejectsLoneAndMalformedSurrogates) {
  // Lone high surrogate (end of string, unescaped follower, non-\u escape).
  EXPECT_THROW((void)Json::parse("\"\\ud83d\""), JsonParseError);
  EXPECT_THROW((void)Json::parse("\"\\ud83dx\""), JsonParseError);
  EXPECT_THROW((void)Json::parse("\"\\ud83d\\n\""), JsonParseError);
  // High surrogate followed by a non-surrogate escape.
  EXPECT_THROW((void)Json::parse("\"\\ud83d\\u0041\""), JsonParseError);
  // High surrogate followed by another high surrogate.
  EXPECT_THROW((void)Json::parse("\"\\ud83d\\ud83d\""), JsonParseError);
  // Lone low surrogate.
  EXPECT_THROW((void)Json::parse("\"\\ude00\""), JsonParseError);
}

TEST(BenchJson, RoundTripPreservesEveryField) {
  const BenchReport r = golden_report();
  const BenchReport back = BenchReport::from_json(r.to_json());
  EXPECT_EQ(back.schema_version, r.schema_version);
  EXPECT_EQ(back.bench, r.bench);
  EXPECT_EQ(back.smoke, r.smoke);
  EXPECT_EQ(back.repo_sha, r.repo_sha);
  EXPECT_EQ(back.config, r.config);
  ASSERT_EQ(back.headline.size(), r.headline.size());
  for (std::size_t i = 0; i < r.headline.size(); ++i) {
    EXPECT_EQ(back.headline[i].name, r.headline[i].name);
    EXPECT_DOUBLE_EQ(back.headline[i].value, r.headline[i].value);
    EXPECT_EQ(back.headline[i].unit, r.headline[i].unit);
    EXPECT_EQ(back.headline[i].higher_is_better, r.headline[i].higher_is_better);
    EXPECT_EQ(back.headline[i].noisy, r.headline[i].noisy);
  }
  ASSERT_EQ(back.metrics.size(), r.metrics.size());
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].name, r.metrics[i].name);
    EXPECT_EQ(back.metrics[i].type, r.metrics[i].type);
    EXPECT_DOUBLE_EQ(back.metrics[i].value, r.metrics[i].value);
    EXPECT_EQ(back.metrics[i].count, r.metrics[i].count);
    EXPECT_DOUBLE_EQ(back.metrics[i].sum, r.metrics[i].sum);
  }
  // The serialized form also survives a text round trip.
  EXPECT_TRUE(validate_bench_json(Json::parse(r.to_json().dump(2))).empty());
}

TEST(BenchJson, EmitterOutputValidates) {
  EXPECT_TRUE(validate_bench_json(golden_report().to_json()).empty());
}

// The pinned top-level key set.  Adding, removing or renaming a key must
// fail here (and in the golden file) until kBenchSchemaVersion is bumped
// and this list is updated deliberately.
TEST(BenchJson, GoldenTopLevelKeySetIsPinned) {
  ASSERT_EQ(kBenchSchemaVersion, 1);
  const Json doc = golden_report().to_json();
  std::vector<std::string> keys;
  for (const auto& [key, value] : doc.as_object()) keys.push_back(key);
  const std::vector<std::string> expected = {
      "bench",    "config",   "fingerprint", "headline",
      "metrics",  "repo_sha", "schema_version", "smoke"};
  EXPECT_EQ(keys, expected);
}

// Byte-for-byte golden file: pins key order, indentation, number
// formatting and the fingerprint of the canonical sample.  If the drift
// is an intentional schema change, bump kBenchSchemaVersion and
// regenerate by rerunning this test with INPLANE_REGEN_GOLDEN=1.
TEST(BenchJson, GoldenFileMatchesSerializedForm) {
  const std::string golden_path =
      std::string(INPLANE_GOLDEN_DIR) + "/BENCH_golden_sample.json";
  if (std::getenv("INPLANE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << golden_report().to_json().dump(2) << "\n";
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
  }
  const std::string want = rstrip(read_file(golden_path));
  const std::string got = rstrip(golden_report().to_json().dump(2));
  EXPECT_EQ(got, want)
      << "BENCH schema serialization drifted from the committed golden file; "
         "if intentional, bump kBenchSchemaVersion and regenerate "
      << golden_path;
}

TEST(BenchJson, FingerprintIgnoresMeasurementsAndSha) {
  const BenchReport base = golden_report();
  BenchReport variant = base;
  variant.repo_sha = "ffffffffffff";
  variant.headline[0].value = 9999.0;
  variant.metrics.clear();
  EXPECT_EQ(variant.fingerprint(), base.fingerprint());
}

TEST(BenchJson, FingerprintTracksIdentityAndConfig) {
  const BenchReport base = golden_report();
  BenchReport other = base;
  other.config["grid"] = "512x512x256";
  EXPECT_NE(other.fingerprint(), base.fingerprint());
  other = base;
  other.smoke = false;
  EXPECT_NE(other.fingerprint(), base.fingerprint());
  other = base;
  other.bench = "other_bench";
  EXPECT_NE(other.fingerprint(), base.fingerprint());
}

TEST(BenchJson, ValidateCatchesSchemaViolations) {
  const auto has_error = [](const Json& doc, const std::string& needle) {
    for (const std::string& e : validate_bench_json(doc)) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  const Json good = golden_report().to_json();
  ASSERT_TRUE(validate_bench_json(good).empty());

  Json doc = good;
  doc.as_object()["schema_version"] = Json(kBenchSchemaVersion + 1);
  EXPECT_TRUE(has_error(doc, "schema_version"));

  doc = good;
  doc.as_object().erase("bench");
  EXPECT_TRUE(has_error(doc, "missing key: bench"));

  doc = good;
  doc.as_object()["surprise"] = Json(1);
  EXPECT_TRUE(has_error(doc, "unknown key: surprise"));

  doc = good;
  doc.as_object()["bench"] = Json("Bad-Name");
  EXPECT_TRUE(has_error(doc, "bench"));

  doc = good;
  doc.as_object()["fingerprint"] = Json("00000000");
  EXPECT_TRUE(has_error(doc, "fingerprint"));

  doc = good;
  doc.as_object()["smoke"] = Json("yes");
  EXPECT_TRUE(has_error(doc, "smoke"));

  doc = good;
  doc.as_object()["headline"].as_array()[0].as_object()["value"] =
      Json(std::nan(""));
  EXPECT_TRUE(has_error(doc, "headline"));

  doc = good;
  doc.as_object()["metrics"].as_array()[0].as_object().erase("value");
  EXPECT_TRUE(has_error(doc, "metrics"));

  EXPECT_THROW((void)BenchReport::from_json(Json(Json::Array{})), std::runtime_error);
}

TEST(BenchJson, MetricSamplesFlattenSortedRegistry) {
  const bool was = inplane::metrics::enabled();
  inplane::metrics::set_enabled(true);
  inplane::metrics::Registry reg;
  reg.counter("b.count").add(5);
  reg.gauge("a.level").set(0.5);
  { inplane::metrics::ScopedTimer scope(reg.timer("c.span")); }
  inplane::metrics::set_enabled(was);

  const std::vector<MetricSample> samples = metric_samples(reg);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "a.level");
  EXPECT_EQ(samples[0].type, "gauge");
  EXPECT_EQ(samples[1].name, "b.count");
  EXPECT_EQ(samples[1].type, "counter");
  EXPECT_DOUBLE_EQ(samples[1].value, 5.0);
  EXPECT_EQ(samples[2].name, "c.span.cpu_s");
  EXPECT_EQ(samples[2].type, "histogram");
  EXPECT_EQ(samples[3].name, "c.span.wall_s");
  EXPECT_EQ(samples[3].count, 1u);
}

TEST(BenchJson, WriteBenchReportProducesValidatedFile) {
  const std::string dir = "test_bench_json_tmp/write/nested";
  const std::string path = write_bench_report(golden_report(), dir);
  EXPECT_EQ(path, dir + "/" + bench_report_filename("golden_sample"));
  EXPECT_EQ(bench_report_filename("x"), "BENCH_x.json");
  const Json doc = Json::parse(read_file(path));
  EXPECT_TRUE(validate_bench_json(doc).empty());
  std::filesystem::remove_all("test_bench_json_tmp");
}

// --- bench_diff regression gate -------------------------------------------

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs discovered cases as separate
    // processes in the same working directory, so a shared relative
    // path collides under ctest -j.
    root_ = std::string("test_bench_diff_tmp_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    old_dir_ = root_ + "/old";
    new_dir_ = root_ + "/new";
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::string old_dir_;
  std::string new_dir_;
};

TEST_F(BenchDiffTest, IdenticalTreesPass) {
  (void)write_bench_report(golden_report(), old_dir_);
  (void)write_bench_report(golden_report(), new_dir_);
  const BenchDiffResult result = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_TRUE(result.pass());
  EXPECT_EQ(result.compared_files, 1u);
  EXPECT_EQ(result.deltas.size(), 3u);
  for (const BenchDelta& d : result.deltas) {
    EXPECT_FALSE(d.regression);
    EXPECT_DOUBLE_EQ(d.change, 0.0);
  }
}

TEST_F(BenchDiffTest, InjectedRegressionFailsInBothDirections) {
  (void)write_bench_report(golden_report(), old_dir_);
  BenchReport worse = golden_report();
  worse.headline[0].value *= 0.80;  // throughput (higher better) -20%
  worse.headline[1].value *= 1.25;  // model_gap (lower better) +25%
  (void)write_bench_report(worse, new_dir_);

  const BenchDiffResult result = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_FALSE(result.pass());
  ASSERT_EQ(result.regressions().size(), 2u);
  EXPECT_EQ(result.regressions()[0]->metric, "throughput");
  EXPECT_EQ(result.regressions()[1]->metric, "model_gap");
}

TEST_F(BenchDiffTest, ThresholdAndImprovementsAreRespected) {
  (void)write_bench_report(golden_report(), old_dir_);
  BenchReport within = golden_report();
  within.headline[0].value *= 0.95;  // -5%: inside the 10% default
  within.headline[1].value *= 0.50;  // model_gap halved: an improvement
  (void)write_bench_report(within, new_dir_);
  EXPECT_TRUE(diff_bench_trees(old_dir_, new_dir_).pass());

  // The same -5% fails a tighter gate.
  BenchDiffOptions tight;
  tight.threshold = 0.02;
  EXPECT_FALSE(diff_bench_trees(old_dir_, new_dir_, tight).pass());
}

TEST_F(BenchDiffTest, NoisyMetricsAreSkippedUnlessRequested) {
  (void)write_bench_report(golden_report(), old_dir_);
  BenchReport slower = golden_report();
  slower.headline[2].value *= 2.0;  // wall (noisy, lower better) doubled
  (void)write_bench_report(slower, new_dir_);

  const BenchDiffResult lax = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_TRUE(lax.pass());
  bool saw_skip = false;
  for (const BenchDelta& d : lax.deltas) saw_skip = saw_skip || d.skipped_noisy;
  EXPECT_TRUE(saw_skip);

  BenchDiffOptions strict;
  strict.include_noisy = true;
  EXPECT_FALSE(diff_bench_trees(old_dir_, new_dir_, strict).pass());
}

TEST_F(BenchDiffTest, FingerprintDriftSkipsGatingWithWarning) {
  (void)write_bench_report(golden_report(), old_dir_);
  BenchReport reconfigured = golden_report();
  reconfigured.config["grid"] = "512x512x256";
  reconfigured.headline[0].value *= 0.5;  // would be a huge regression
  (void)write_bench_report(reconfigured, new_dir_);

  const BenchDiffResult result = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_TRUE(result.pass());
  EXPECT_EQ(result.compared_files, 0u);
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_NE(result.warnings[0].find("fingerprint"), std::string::npos);
}

TEST_F(BenchDiffTest, MissingAndNewBenchesWarn) {
  (void)write_bench_report(golden_report(), old_dir_);
  BenchReport fresh = golden_report();
  fresh.bench = "brand_new";
  (void)write_bench_report(fresh, new_dir_);

  const BenchDiffResult result = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_EQ(result.compared_files, 0u);
  bool missing = false;
  bool brand_new = false;
  for (const std::string& w : result.warnings) {
    missing = missing || w.find("missing from new tree") != std::string::npos;
    brand_new = brand_new || w.find("without baseline") != std::string::npos;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(brand_new);
}

TEST_F(BenchDiffTest, ZeroBaselineDriftIsHardMismatch) {
  // model_gap (non-noisy, lower better) measured exactly 0.0 in the old
  // tree: the relative change is undefined, so any drift must gate hard
  // instead of slipping past the threshold compare as Inf/NaN.
  BenchReport old_report = golden_report();
  old_report.headline[1].value = 0.0;
  (void)write_bench_report(old_report, old_dir_);
  BenchReport drifted = old_report;
  drifted.headline[1].value = 5.0;
  (void)write_bench_report(drifted, new_dir_);

  const BenchDiffResult result = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_FALSE(result.pass());
  ASSERT_EQ(result.regressions().size(), 1u);
  EXPECT_EQ(result.regressions()[0]->metric, "model_gap");
  bool warned = false;
  for (const std::string& w : result.warnings) {
    warned = warned || w.find("zero baseline") != std::string::npos;
  }
  EXPECT_TRUE(warned);

  // A zero baseline that stays exactly zero is not drift and passes.
  (void)write_bench_report(old_report, new_dir_);
  EXPECT_TRUE(diff_bench_trees(old_dir_, new_dir_).pass());
}

TEST_F(BenchDiffTest, DisappearedHeadlineMetricIsHardRegression) {
  (void)write_bench_report(golden_report(), old_dir_);
  BenchReport pruned = golden_report();
  pruned.headline.erase(pruned.headline.begin() + 1);  // drop model_gap
  (void)write_bench_report(pruned, new_dir_);

  // There is no number to compare, so a vanished metric must never pass
  // silently — even though every surviving metric is unchanged.
  const BenchDiffResult result = diff_bench_trees(old_dir_, new_dir_);
  EXPECT_FALSE(result.pass());
  ASSERT_EQ(result.regressions().size(), 1u);
  EXPECT_EQ(result.regressions()[0]->metric, "model_gap");
  bool warned = false;
  for (const std::string& w : result.warnings) {
    warned = warned || w.find("disappeared") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST_F(BenchDiffTest, UnreadableDirectoryThrows) {
  (void)write_bench_report(golden_report(), old_dir_);
  EXPECT_THROW((void)diff_bench_trees(old_dir_, root_ + "/does_not_exist"),
               std::runtime_error);
}

}  // namespace
