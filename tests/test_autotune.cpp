// Auto-tuner: the section IV-C constraints (i)-(iv), exhaustive search
// behaviour, and the section-VI model-guided search (beta cutoff, subset
// relation, near-optimality).

#include <gtest/gtest.h>

#include <cmath>

#include "autotune/tuner.hpp"

namespace inplane::autotune {
namespace {

using kernels::LaunchConfig;
using kernels::Method;

const Extent3 kGrid{512, 512, 256};

TEST(SearchSpace, ConstraintsHold) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const SearchSpace space;
  const auto configs =
      space.enumerate(dev, kGrid, Method::InPlaneFullSlice, 3, sizeof(float), 4);
  ASSERT_FALSE(configs.empty());
  for (const LaunchConfig& cfg : configs) {
    EXPECT_EQ(cfg.tx % 16, 0) << cfg.to_string();                       // (i)
    EXPECT_LE(cfg.threads(), dev.max_threads_per_block) << cfg.to_string();  // (ii)
    const auto res =
        kernels::estimate_resources(Method::InPlaneFullSlice, cfg, 3, sizeof(float));
    EXPECT_LE(res.smem_bytes, static_cast<std::size_t>(dev.smem_per_sm));  // (iii)
    EXPECT_EQ(kGrid.ny % cfg.tile_h(), 0) << cfg.to_string();           // (iv)
    EXPECT_EQ(kGrid.nx % cfg.tile_w(), 0) << cfg.to_string();
    EXPECT_EQ(cfg.vec, 4);
  }
}

TEST(SearchSpace, ForwardPlaneKeepsSdkStructure) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const SearchSpace space;
  for (const LaunchConfig& cfg :
       space.enumerate(dev, kGrid, Method::ForwardPlane, 1, sizeof(float), 1)) {
    EXPECT_EQ(cfg.tx, 32) << cfg.to_string();
    EXPECT_EQ(cfg.rx, 1) << cfg.to_string();
  }
}

TEST(SearchSpace, HigherRadiusShrinksSpace) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const SearchSpace space;
  const auto r1 =
      space.enumerate(dev, kGrid, Method::InPlaneFullSlice, 1, sizeof(float), 4);
  const auto r6 =
      space.enumerate(dev, kGrid, Method::InPlaneFullSlice, 6, sizeof(float), 4);
  EXPECT_GE(r1.size(), r6.size());  // bigger tiles blow the smem limit
}

TEST(SearchSpace, DefaultVec) {
  EXPECT_EQ(default_vec(Method::ForwardPlane, 4), 1);
  EXPECT_EQ(default_vec(Method::InPlaneClassical, 4), 1);
  EXPECT_EQ(default_vec(Method::InPlaneFullSlice, 4), 4);
  EXPECT_EQ(default_vec(Method::InPlaneFullSlice, 8), 2);
  EXPECT_EQ(default_vec(Method::InPlaneHorizontal, 8), 2);
}

TEST(ExhaustiveTune, BestIsMaximumOfEntries) {
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const TuneResult t = exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid);
  ASSERT_TRUE(t.found());
  EXPECT_EQ(t.executed, t.candidates);
  for (const TuneEntry& e : t.entries) {
    if (e.timing.valid) {
      EXPECT_LE(e.timing.mpoints_per_s, t.best.timing.mpoints_per_s);
    }
  }
  // Entries are sorted descending by measured performance.
  for (std::size_t i = 1; i < t.entries.size(); ++i) {
    if (t.entries[i - 1].executed && t.entries[i].executed) {
      EXPECT_GE(t.entries[i - 1].timing.mpoints_per_s,
                t.entries[i].timing.mpoints_per_s);
    }
  }
}

TEST(ExhaustiveTune, RecordsModelPredictions) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const TuneResult t = exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid);
  int with_model = 0;
  for (const TuneEntry& e : t.entries) {
    if (e.model_mpoints > 0.0) ++with_model;
  }
  EXPECT_GT(with_model, 0);
}

TEST(ExhaustiveTune, TraceBestAttachesFullGridTrace) {
  // TuneOptions::trace_best runs a whole-grid Trace sweep of the winner
  // (affordable thanks to block-class memoization) and attaches the
  // aggregate; by default nothing is traced.
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const Extent3 small{128, 64, 16};
  SearchSpace space;
  space.rx_values = {1};
  space.ry_values = {1};

  const TuneResult plain = exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev,
                                                  small, space, TuneOptions{});
  ASSERT_TRUE(plain.found());
  EXPECT_FALSE(plain.best_traced);

  TuneOptions opts;
  opts.trace_best = true;
  const TuneResult traced =
      exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, small, space, opts);
  ASSERT_TRUE(traced.found());
  ASSERT_TRUE(traced.best_traced);
  // Store-once pins that the trace really covers the whole grid.
  EXPECT_EQ(traced.best_trace.bytes_requested_st, small.volume() * sizeof(float));
  EXPECT_GT(traced.best_trace.flops, 0u);
}

TEST(ModelGuidedTune, RunsOnlyBetaFraction) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const SearchSpace space;
  const double beta = 0.05;
  const TuneResult t =
      model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, beta, space);
  ASSERT_TRUE(t.found());
  // The budget is the top beta fraction of the *ranked* (i.e. constraint-
  // satisfying) candidates, not of the raw unfiltered space.
  const auto expected = static_cast<std::size_t>(
      std::ceil(beta * static_cast<double>(t.candidates)));
  EXPECT_EQ(t.executed, expected);
  EXPECT_LT(t.executed, t.candidates);
}

// Regression for the budget being computed from space.raw_size(): with
// heavy constraint filtering, ceil(beta * raw) could cover every surviving
// candidate and beta-pruning silently degenerated to an exhaustive sweep.
TEST(ModelGuidedTune, SmallBetaExecutesStrictlyFewerThanExhaustive) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  // Radius 6 prunes the space hard (big tiles blow the shared-memory
  // limit), which is exactly the regime where the old budget was a no-op.
  const StencilCoeffs cs = StencilCoeffs::diffusion(6);
  const TuneResult exh =
      exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid);
  const TuneResult mod =
      model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 0.05);
  ASSERT_TRUE(exh.found() && mod.found());
  EXPECT_EQ(mod.candidates, exh.candidates);
  EXPECT_LT(mod.executed, exh.executed);
}

TEST(ModelGuidedTune, BetaIsClampedAndAlwaysRunsOneCandidate) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const TuneResult zero =
      model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 0.0);
  ASSERT_TRUE(zero.found());
  EXPECT_EQ(zero.executed, 1u);
  const TuneResult over =
      model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 7.0);
  ASSERT_TRUE(over.found());
  EXPECT_EQ(over.executed, over.candidates);
}

TEST(ModelGuidedTune, NearOptimal) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  for (int order : {2, 6, 12}) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const TuneResult exh =
        exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid);
    const TuneResult mod =
        model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 0.05);
    ASSERT_TRUE(exh.found() && mod.found());
    // The paper reports ~2% average / ~6% worst; hold a 10% bound here.
    EXPECT_GE(mod.best.timing.mpoints_per_s,
              exh.best.timing.mpoints_per_s * 0.90)
        << "order " << order;
  }
}

TEST(ModelGuidedTune, LargerBetaNeverWorse) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx680();
  const StencilCoeffs cs = StencilCoeffs::diffusion(3);
  const TuneResult small =
      model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 0.02);
  const TuneResult large =
      model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 0.30);
  ASSERT_TRUE(small.found() && large.found());
  EXPECT_GE(large.best.timing.mpoints_per_s, small.best.timing.mpoints_per_s);
  EXPECT_GE(large.executed, small.executed);
}

TEST(Tuner, DoublePrecisionUsesNarrowerVectors) {
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const TuneResult t =
      exhaustive_tune<double>(Method::InPlaneFullSlice, cs, dev, kGrid);
  ASSERT_TRUE(t.found());
  EXPECT_EQ(t.best.config.vec, 2);
}

}  // namespace
}  // namespace inplane::autotune
