// Pillar 1 of the verification subsystem: the differential oracle and the
// shared CPU-reference comparator.

#include <gtest/gtest.h>

#include "gpusim/fault_injector.hpp"
#include "kernels/runner.hpp"
#include "verify/oracle.hpp"
#include "verify/reference_oracle.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;

TEST(VerifyOracle, AllFiveMethodsAgreeWithReferenceAndEachOther) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(3);
  const auto variants =
      verify::all_method_variants(LaunchConfig{16, 8, 2, 1, 1}, sizeof(float));
  ASSERT_EQ(variants.size(), 5u);
  const verify::VerifyReport report =
      verify::differential_oracle<float>(coeffs, variants, {64, 16, 12});
  EXPECT_TRUE(report.pass()) << report.summary();
  // 5 reference checks + C(5,2) pairwise checks.
  EXPECT_EQ(report.checks.size(), 5u + 10u) << report.summary();
}

TEST(VerifyOracle, DoublePrecisionDifferentialPasses) {
  const StencilCoeffs coeffs = StencilCoeffs::random(2, 99);
  const auto variants =
      verify::all_method_variants(LaunchConfig{16, 4, 1, 2, 1}, sizeof(double));
  const verify::VerifyReport report =
      verify::differential_oracle<double>(coeffs, variants, {32, 16, 9});
  EXPECT_TRUE(report.pass()) << report.summary();
}

TEST(VerifyOracle, InvalidVariantIsRejectedLoudlyNotExecuted) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(1);
  // 48 does not divide into 32-wide tiles: validate() must reject, and the
  // oracle additionally checks run_kernel refuses to execute it.
  const std::vector<verify::VariantSpec> variants = {
      {Method::InPlaneFullSlice, LaunchConfig{32, 8, 1, 1, 1}}};
  const verify::VerifyReport report =
      verify::differential_oracle<float>(coeffs, variants, {48, 16, 8});
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.pass()) << report.summary();
  EXPECT_NE(report.checks[0].name.find("rejected"), std::string::npos);
}

TEST(VerifyOracle, CorruptedOutputIsCaughtWithSite) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(2);
  const auto kernel = make_kernel<float>(Method::InPlaneVertical, coeffs,
                                         LaunchConfig{16, 8, 1, 1, 1});
  const Extent3 extent{32, 16, 8};
  Grid3<float> in = make_grid_for(*kernel, extent);
  Grid3<float> out = make_grid_for(*kernel, extent);
  verify::fill_verification_field(in, 7);
  run_kernel(*kernel, in, out, gpusim::DeviceSpec::geforce_gtx580());
  const UlpBudget budget = UlpBudget::for_radius(2, sizeof(float));
  ASSERT_TRUE(verify::reference_status(coeffs, in, out, budget).ok());

  out.at(5, 3, 2) += 0.25f;  // silent corruption
  const Status verdict = verify::reference_status(coeffs, in, out, budget);
  EXPECT_EQ(verdict.code, ErrorCode::DataCorruption);
  EXPECT_NE(verdict.context.find("(5, 3, 2)"), std::string::npos) << verdict.context;
}

TEST(VerifyOracle, ReportAbsorbPrefixesNames) {
  verify::VerifyReport a;
  a.checks.push_back({"x", true, ""});
  verify::VerifyReport b;
  b.checks.push_back({"y", false, "boom"});
  a.absorb(b, "sub");
  EXPECT_EQ(a.checks.size(), 2u);
  EXPECT_EQ(a.checks[1].name, "sub/y");
  EXPECT_FALSE(a.pass());
  EXPECT_EQ(a.failures(), 1u);
}

TEST(VerifyOracle, VerificationFieldIsPureAndBounded) {
  for (int i = -8; i < 8; ++i) {
    const double v = verify::verification_field_value(3, i, -i, 2 * i);
    EXPECT_EQ(v, verify::verification_field_value(3, i, -i, 2 * i));
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_NE(verify::verification_field_value(3, 1, 2, 3),
            verify::verification_field_value(4, 1, 2, 3));
}

// Satellite (c): the guarded runner's reference check and the standalone
// oracle are the same comparator — an injected bit flip is flagged
// DataCorruption by both paths.
TEST(VerifyOracle, GuardedRunnerAndOracleFlagTheSameBitflip) {
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(1);
  const auto kernel = make_kernel<float>(Method::ForwardPlane, coeffs,
                                         LaunchConfig{16, 8, 1, 1, 1});
  const Extent3 extent{32, 16, 8};
  Grid3<float> in = make_grid_for(*kernel, extent);
  Grid3<float> out = make_grid_for(*kernel, extent);
  verify::fill_verification_field(in, 11);

  // A high-probability exponent-bit flip on stores: wrong answers, no trap.
  const auto plan = gpusim::FaultPlan::parse("seed=5; bitflip:p=0.01,bit=30");
  gpusim::FaultInjector injector(plan);
  RunOptions options;
  options.faults = &injector;
  options.retry.max_attempts = 1;  // no retry: the corruption must surface
  const RunReport report = run_kernel_guarded(
      *kernel, in, out, gpusim::DeviceSpec::geforce_gtx580(), options);
  ASSERT_EQ(report.status.code, ErrorCode::DataCorruption) << report.status.to_string();
  ASSERT_TRUE(report.verified);

  // The standalone oracle, handed the same corrupted output, must agree.
  const Status oracle = verify::reference_status(
      coeffs, in, out, UlpBudget::for_radius(coeffs.radius(), sizeof(float)));
  EXPECT_EQ(oracle.code, ErrorCode::DataCorruption);
  // Same comparator, same first offending site.
  EXPECT_EQ(report.status.context, oracle.context);
}

}  // namespace
