// Block-class trace memoization (gpusim/block_class.hpp + the runner's
// memoized sweep): the position-class partition must be a sound
// equivalence — memoized runs bit-identical to unmemoized in both grid
// output and aggregate TraceStats — and the cache must stand down
// whenever fault injection or ABFT makes congruent blocks diverge.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "gpusim/block_class.hpp"
#include "kernels/runner.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace inplane;
using namespace inplane::kernels;
using gpusim::BlockClassMap;
using gpusim::ExecMode;
using gpusim::TraceStats;

const gpusim::DeviceSpec kDevice = gpusim::DeviceSpec::geforce_gtx580();

// --- classify_blocks ------------------------------------------------------

GridLayout layout(Extent3 extent, int halo, int align_offset = 0) {
  return GridLayout(extent, halo, sizeof(float), 32, align_offset);
}

TEST(BlockClass, PhaseModulusIsSegmentLcm) {
  EXPECT_EQ(gpusim::phase_modulus(kDevice),
            std::lcm(static_cast<std::uint64_t>(kDevice.coalesce_bytes),
                     static_cast<std::uint64_t>(kDevice.store_segment_bytes)));
  gpusim::DeviceSpec odd = kDevice;
  odd.coalesce_bytes = 96;
  odd.store_segment_bytes = 64;
  EXPECT_EQ(gpusim::phase_modulus(odd), 192u);
  odd.coalesce_bytes = 0;  // degenerate spec must not divide by zero
  EXPECT_EQ(gpusim::phase_modulus(odd), 64u);
}

TEST(BlockClass, EmptyLaunchYieldsEmptyMap) {
  const GridLayout g = layout({32, 32, 8}, 2);
  // Grid smaller than the tile: the runner computes nbx = nx / tile_w = 0.
  for (const auto& [nbx, nby] : {std::pair{0, 4}, {4, 0}, {0, 0}}) {
    const BlockClassMap map =
        gpusim::classify_blocks(g, g, 64, 64, nbx, nby, sizeof(float), 128);
    EXPECT_EQ(map.num_blocks(), 0u);
    EXPECT_EQ(map.num_classes(), 0u);
  }
  // Degenerate tile extents are rejected the same way.
  EXPECT_EQ(gpusim::classify_blocks(g, g, 0, 8, 2, 2, 4, 128).num_blocks(), 0u);
}

TEST(BlockClass, SingleBlockIsItsOwnClassOnEveryEdge) {
  // tile == grid: one block, touching all four boundaries.
  const GridLayout g = layout({16, 8, 4}, 1);
  const BlockClassMap map =
      gpusim::classify_blocks(g, g, 16, 8, 1, 1, sizeof(float), 128);
  ASSERT_EQ(map.num_blocks(), 1u);
  ASSERT_EQ(map.num_classes(), 1u);
  EXPECT_TRUE(map.is_representative(0));
  EXPECT_EQ(map.classes[0].edges, gpusim::kEdgeXLo | gpusim::kEdgeXHi |
                                      gpusim::kEdgeYLo | gpusim::kEdgeYHi);
}

TEST(BlockClass, PartitionCoversAllBlocksWithLowestRepresentatives) {
  const GridLayout g = layout({96, 48, 8}, 3);
  const int nbx = 6, nby = 6;
  const BlockClassMap map =
      gpusim::classify_blocks(g, g, 16, 8, nbx, nby, sizeof(float), 128);
  ASSERT_EQ(map.num_blocks(), static_cast<std::size_t>(nbx * nby));
  ASSERT_GE(map.num_classes(), 1u);
  std::vector<std::size_t> first_member(map.num_classes(), SIZE_MAX);
  for (std::size_t b = 0; b < map.num_blocks(); ++b) {
    ASSERT_LT(map.class_of[b], map.num_classes());
    first_member[map.class_of[b]] = std::min(first_member[map.class_of[b]], b);
  }
  for (std::size_t c = 0; c < map.num_classes(); ++c) {
    // Every class is inhabited and represented by its lowest member.
    EXPECT_EQ(map.representative[c], first_member[c]);
    EXPECT_EQ(map.class_of[map.representative[c]], c);
    EXPECT_TRUE(map.is_representative(map.representative[c]));
  }
}

TEST(BlockClass, CongruentShiftsCoalesceIntoFewClasses) {
  // elem * tile_w = 4 * 32 = 128 ≡ 0 (mod 128): every step along x shifts
  // by a whole segment, so interior blocks of a row are one class and the
  // class count is bounded by the distinct (row phase, edge) patterns.
  const GridLayout g = layout({256, 64, 8}, 2);
  const BlockClassMap map =
      gpusim::classify_blocks(g, g, 32, 8, 8, 8, sizeof(float), 128);
  EXPECT_EQ(map.num_blocks(), 64u);
  for (std::size_t by = 0; by < 8; ++by) {
    const std::size_t row = by * 8;
    for (std::size_t bx = 2; bx < 7; ++bx) {
      EXPECT_EQ(map.class_of[row + bx], map.class_of[row + 1])
          << "interior blocks of row " << by << " must share a class";
    }
  }
  EXPECT_LT(map.num_classes(), map.num_blocks());
}

TEST(BlockClass, HaloWiderThanTileStaysWellFormed) {
  // halo > tile_w: the address phases shift by the (large) halo origin but
  // the partition must still cover every block exactly once.
  const GridLayout g = layout({32, 16, 4}, 8);
  const BlockClassMap map =
      gpusim::classify_blocks(g, g, 4, 4, 8, 4, sizeof(float), 128);
  ASSERT_EQ(map.num_blocks(), 32u);
  for (std::size_t b = 0; b < map.num_blocks(); ++b) {
    ASSERT_LT(map.class_of[b], map.num_classes());
    EXPECT_LE(map.representative[map.class_of[b]], b)
        << "representative must not come after its member";
  }
}

// --- memoized == unmemoized ----------------------------------------------

/// Scoped override of the process-wide memo switch.
class MemoSwitch {
 public:
  explicit MemoSwitch(bool enabled) : was_(trace_memo_enabled()) {
    set_trace_memo_enabled(enabled);
  }
  ~MemoSwitch() { set_trace_memo_enabled(was_); }

 private:
  bool was_;
};

struct MemoCase {
  Method method;
  int order;
  LaunchConfig cfg;
  Extent3 extent;
};

template <typename T>
void expect_memo_equivalent(const MemoCase& mc) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(mc.order / 2);
  LaunchConfig cfg = mc.cfg;
  // Vector loads are capped at 16 bytes; the float-sized vec widths of
  // the case table halve for double.
  while (cfg.vec > 1 && static_cast<std::size_t>(cfg.vec) * sizeof(T) > 16) {
    cfg.vec /= 2;
  }
  const auto kernel = make_kernel<T>(mc.method, cs, cfg);
  Grid3<T> in = make_grid_for(*kernel, mc.extent);
  in.fill_with_halo([](int i, int j, int k) {
    return static_cast<T>(((i * 31 + j * 17 + k * 7) % 23) - 11) / T(8);
  });

  const auto run = [&](ExecMode mode, bool memo, Grid3<T>& out) {
    MemoSwitch guard(memo);
    return run_kernel(*kernel, in, out, kDevice, mode);
  };

  Grid3<T> out_plain = make_grid_for(*kernel, mc.extent);
  Grid3<T> out_memo = make_grid_for(*kernel, mc.extent);
  const TraceStats both_plain = run(ExecMode::Both, false, out_plain);
  const TraceStats both_memo = run(ExecMode::Both, true, out_memo);

  // Aggregate TraceStats identical (integer counters, order-independent
  // reduction) and the grid bit-identical, padding included.
  EXPECT_TRUE(both_plain == both_memo);
  ASSERT_EQ(out_plain.allocated(), out_memo.allocated());
  EXPECT_EQ(std::memcmp(out_plain.raw(), out_memo.raw(),
                        out_plain.allocated() * sizeof(T)),
            0);

  // Pure Trace mode (no data flow) memoizes to the same aggregate.
  Grid3<T> scratch = make_grid_for(*kernel, mc.extent);
  const TraceStats trace_plain = run(ExecMode::Trace, false, scratch);
  const TraceStats trace_memo = run(ExecMode::Trace, true, scratch);
  EXPECT_TRUE(trace_plain == trace_memo);
}

class TraceMemoEquivalence : public ::testing::TestWithParam<MemoCase> {};

TEST_P(TraceMemoEquivalence, MemoizedRunIsBitIdentical) {
  expect_memo_equivalent<float>(GetParam());
}

TEST_P(TraceMemoEquivalence, MemoizedRunIsBitIdenticalDouble) {
  expect_memo_equivalent<double>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TraceMemoEquivalence,
    ::testing::ValuesIn(std::vector<MemoCase>{
        // All five variants over assorted orders and launch shapes,
        // including misaligned tiles (tile_w*elem not a segment multiple),
        // register tiling, vectorisation, and a single-block launch that
        // exercises the nblocks <= 1 bypass.
        {Method::ForwardPlane, 2, {32, 4, 1, 1, 1}, {64, 32, 12}},
        {Method::ForwardPlane, 8, {16, 8, 2, 1, 1}, {64, 32, 8}},
        {Method::InPlaneClassical, 2, {16, 8, 2, 1, 1}, {64, 32, 8}},
        {Method::InPlaneClassical, 6, {32, 4, 1, 2, 1}, {96, 24, 8}},
        {Method::InPlaneVertical, 4, {32, 8, 1, 1, 4}, {64, 32, 8}},
        {Method::InPlaneVertical, 8, {16, 4, 1, 2, 2}, {48, 16, 8}},
        {Method::InPlaneHorizontal, 4, {32, 4, 1, 2, 4}, {64, 32, 8}},
        {Method::InPlaneHorizontal, 6, {16, 8, 2, 1, 2}, {96, 32, 8}},
        {Method::InPlaneFullSlice, 2, {32, 4, 1, 1, 4}, {64, 32, 8}},
        {Method::InPlaneFullSlice, 8, {16, 4, 2, 2, 2}, {64, 16, 8}},
        // tile == grid: one block, memo self-bypasses.
        {Method::InPlaneFullSlice, 4, {32, 8, 1, 1, 2}, {32, 8, 8}},
    }),
    [](const testing::TestParamInfo<MemoCase>& param) {
      std::string m = to_string(param.param.method);
      std::erase(m, '-');
      return m + "_o" + std::to_string(param.param.order) + "_" +
             std::to_string(param.param.extent.nx) + "x" +
             std::to_string(param.param.extent.ny) + "x" +
             std::to_string(param.param.extent.nz);
    });

// --- bypass rules ---------------------------------------------------------

class TraceMemoBypass : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics::enabled();
    metrics::set_enabled(true);
    metrics::Registry::global().reset();
    set_trace_memo_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_enabled_); }

  static std::uint64_t memo_launches() {
    return metrics::Registry::global()
        .counter("gpusim.trace_memo.launches")
        .value();
  }

  template <typename Fn>
  RunReport guarded(const Fn& tweak) const {
    const auto kernel = make_kernel<float>(Method::InPlaneFullSlice,
                                           StencilCoeffs::diffusion(2), cfg_);
    Grid3<float> in = make_grid_for(*kernel, extent_);
    Grid3<float> out = make_grid_for(*kernel, extent_);
    in.fill_with_halo([](int i, int j, int k) { return float(i + j - k); });
    RunOptions options;
    options.mode = ExecMode::Both;
    tweak(options);
    return run_kernel_guarded(*kernel, in, out, kDevice, options);
  }

  const LaunchConfig cfg_{16, 8, 1, 1, 2};
  const Extent3 extent_{64, 32, 8};

 private:
  bool was_enabled_ = false;
};

TEST_F(TraceMemoBypass, CleanGuardedRunMemoizes) {
  const RunReport report = guarded([](RunOptions&) {});
  ASSERT_TRUE(report.status.ok()) << report.status.context;
  EXPECT_EQ(memo_launches(), 1u);
  const std::uint64_t classes =
      metrics::Registry::global().counter("gpusim.trace_memo.classes").value();
  const std::uint64_t replayed = metrics::Registry::global()
                                     .counter("gpusim.trace_memo.blocks_replayed")
                                     .value();
  EXPECT_GE(classes, 1u);
  EXPECT_EQ(classes + replayed, 4u * 4u);  // partition covers the launch
}

TEST_F(TraceMemoBypass, FaultInjectorForcesUnmemoizedPath) {
  // Even a fault plan that never fires must bypass the memo: fault sites
  // are keyed by serial block index, so congruence no longer holds.
  const gpusim::FaultInjector injector{gpusim::FaultPlan{}};
  const RunReport report =
      guarded([&](RunOptions& o) { o.faults = &injector; });
  ASSERT_TRUE(report.status.ok()) << report.status.context;
  EXPECT_EQ(memo_launches(), 0u);
}

TEST_F(TraceMemoBypass, AbftForcesUnmemoizedPath) {
  const RunReport report =
      guarded([](RunOptions& o) { o.abft.enabled = true; });
  ASSERT_TRUE(report.status.ok()) << report.status.context;
  EXPECT_TRUE(report.abft.enabled);
  EXPECT_EQ(memo_launches(), 0u);
}

TEST_F(TraceMemoBypass, PerRunOptOutAndGlobalSwitchDisableMemo) {
  const RunReport per_run =
      guarded([](RunOptions& o) { o.trace_memo = false; });
  ASSERT_TRUE(per_run.status.ok()) << per_run.status.context;
  EXPECT_EQ(memo_launches(), 0u);

  MemoSwitch off(false);
  const RunReport global = guarded([](RunOptions&) {});
  ASSERT_TRUE(global.status.ok()) << global.status.context;
  EXPECT_EQ(memo_launches(), 0u);
}

TEST_F(TraceMemoBypass, FunctionalModeHasNothingToMemoize) {
  const RunReport report =
      guarded([](RunOptions& o) { o.mode = ExecMode::Functional; });
  ASSERT_TRUE(report.status.ok()) << report.status.context;
  EXPECT_EQ(memo_launches(), 0u);
}

}  // namespace
