// Trace-level properties tying the simulated kernels to the paper's
// analytic claims: flop counts per element (Tables I/II), store counts,
// load efficiency ordering, resource estimates, and the equivalence of
// trace-only and functional executions.

#include <gtest/gtest.h>

#include "kernels/runner.hpp"

namespace inplane::kernels {
namespace {

using gpusim::DeviceSpec;
using gpusim::ExecMode;
using gpusim::TraceStats;

const Extent3 kBig{512, 512, 256};

struct OrderMethod {
  Method method;
  int order;
};

std::string om_name(const testing::TestParamInfo<OrderMethod>& info) {
  std::string m = to_string(info.param.method);
  for (char& ch : m) {
    if (ch == '-') ch = '_';
  }
  return m + "_o" + std::to_string(info.param.order);
}

class TracePerOrder : public testing::TestWithParam<OrderMethod> {};

TEST_P(TracePerOrder, FlopsPerElementMatchTables) {
  const auto [method, order] = GetParam();
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const LaunchConfig cfg{32, 4, 1, 2, 1};
  const auto kernel = make_kernel<float>(method, cs, cfg);
  const TraceStats t = kernel->trace_plane(DeviceSpec::geforce_gtx580(), kBig);
  const double elems = cfg.tile_w() * cfg.tile_h();
  const int expected = method == Method::ForwardPlane ? 7 * (order / 2) + 1
                                                      : 8 * (order / 2) + 1;
  EXPECT_DOUBLE_EQ(static_cast<double>(t.flops) / elems, expected);
}

TEST_P(TracePerOrder, OneStorePerPointPerPlane) {
  const auto [method, order] = GetParam();
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const LaunchConfig cfg{32, 4, 2, 2, 1};
  const auto kernel = make_kernel<float>(method, cs, cfg);
  const TraceStats t = kernel->trace_plane(DeviceSpec::geforce_gtx580(), kBig);
  EXPECT_EQ(t.bytes_requested_st,
            static_cast<std::uint64_t>(cfg.tile_w()) *
                static_cast<std::uint64_t>(cfg.tile_h()) * 4u);
}

TEST_P(TracePerOrder, LoadsCoverTheNeededRegionExactlyOnce) {
  const auto [method, order] = GetParam();
  const int r = order / 2;
  const StencilCoeffs cs = StencilCoeffs::diffusion(r);
  const LaunchConfig cfg{32, 4, 1, 1, 1};
  const auto kernel = make_kernel<float>(method, cs, cfg);
  const TraceStats t = kernel->trace_plane(DeviceSpec::geforce_gtx580(), kBig);
  const std::uint64_t w = static_cast<std::uint64_t>(cfg.tile_w());
  const std::uint64_t h = static_cast<std::uint64_t>(cfg.tile_h());
  const std::uint64_t ru = static_cast<std::uint64_t>(r);
  // Star region: interior + four strips; full-slice and the strip-loading
  // patterns with corners additionally fetch the 4r^2 corner elements.
  const std::uint64_t star = w * h + 2 * ru * w + 2 * ru * h;
  const std::uint64_t full = star + 4 * ru * ru;
  const std::uint64_t requested_elems = t.bytes_requested_ld / 4u;
  if (method == Method::InPlaneVertical || method == Method::InPlaneHorizontal) {
    EXPECT_EQ(requested_elems, star);
  } else {
    EXPECT_EQ(requested_elems, full);  // classical/nvstencil corners + full-slice
  }
}

TEST_P(TracePerOrder, LoadEfficiencyAtMostOne) {
  const auto [method, order] = GetParam();
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const auto kernel = make_kernel<float>(method, cs, LaunchConfig{64, 4, 1, 1, 4});
  for (const auto& dev : gpusim::paper_devices()) {
    const TraceStats t = kernel->trace_plane(dev, kBig);
    EXPECT_LE(t.load_efficiency(), 1.0);
    EXPECT_GT(t.load_efficiency(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TracePerOrder,
    testing::ValuesIn([] {
      std::vector<OrderMethod> cases;
      for (Method m : {Method::ForwardPlane, Method::InPlaneClassical,
                       Method::InPlaneVertical, Method::InPlaneHorizontal,
                       Method::InPlaneFullSlice}) {
        for (int order : {2, 4, 6, 8, 10, 12}) cases.push_back({m, order});
      }
      return cases;
    }()),
    om_name);

TEST(TraceProperties, FullSliceIssuesFewestLoadInstructions) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(2);
  const LaunchConfig cfg{32, 8, 1, 1, 4};
  const auto dev = DeviceSpec::geforce_gtx580();
  const auto instrs = [&](Method m, int vec) {
    LaunchConfig c = cfg;
    c.vec = vec;
    return make_kernel<float>(m, cs, c)->trace_plane(dev, kBig).load_instrs;
  };
  const auto fs = instrs(Method::InPlaneFullSlice, 4);
  EXPECT_LT(fs, instrs(Method::InPlaneClassical, 1));
  EXPECT_LE(fs, instrs(Method::InPlaneHorizontal, 4));
  EXPECT_LE(fs, instrs(Method::InPlaneVertical, 4));
}

TEST(TraceProperties, VectorLoadsCutInstructionCount) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const auto dev = DeviceSpec::geforce_gtx580();
  std::uint64_t prev = ~0ull;
  for (int vec : {1, 2, 4}) {
    const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, cs,
                                           LaunchConfig{64, 4, 1, 1, vec});
    const std::uint64_t n = kernel->trace_plane(dev, kBig).load_instrs;
    EXPECT_LT(n, prev) << "vec " << vec;
    prev = n;
  }
}

TEST(TraceProperties, TraceModeEqualsBothModeCounts) {
  // The same kernel run over a real grid in Both mode must produce, per
  // plane, the counts the steady-state trace predicts.
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const LaunchConfig cfg{16, 4, 1, 1, 2};
  const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, cs, cfg);
  const auto dev = DeviceSpec::geforce_gtx580();
  const Extent3 small{32, 16, 8};

  Grid3<float> in = make_grid_for(*kernel, small);
  Grid3<float> out = make_grid_for(*kernel, small);
  in.fill_with_halo([](int i, int j, int k) { return float(i + j - k); });
  const TraceStats full = run_kernel(*kernel, in, out, dev, ExecMode::Both);
  const TraceStats plane = kernel->trace_plane(dev, small);

  // Stores: every interior point exactly once.
  EXPECT_EQ(full.bytes_requested_st, small.volume() * 4u);
  // Flops: (8r+1) per point per plane sweep, plus the r tail planes'
  // queue-update work — bound between the exact interior work and the
  // interior work plus r extra full planes.
  const std::uint64_t per_plane_flops = plane.flops;
  const std::uint64_t blocks = static_cast<std::uint64_t>(
      (small.nx / cfg.tile_w()) * (small.ny / cfg.tile_h()));
  EXPECT_GE(full.flops, per_plane_flops * blocks * 8u);
  EXPECT_LE(full.flops, per_plane_flops * blocks * (8u + 1u));
  // Sync count: 2 per plane per block over nz + r sweep steps.
  EXPECT_EQ(full.syncs, blocks * (8u + 1u) * 2u);
}

TEST(TraceProperties, FunctionalModeRecordsNothing) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(1);
  const auto kernel =
      make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig{16, 4, 1, 1, 1});
  Grid3<float> in = make_grid_for(*kernel, {16, 8, 4});
  Grid3<float> out = make_grid_for(*kernel, {16, 8, 4});
  const TraceStats t =
      run_kernel(*kernel, in, out, DeviceSpec::tesla_c2070(), ExecMode::Functional);
  EXPECT_EQ(t.load_instrs, 0u);
  EXPECT_EQ(t.flops, 0u);
}

// --- Resource estimates -----------------------------------------------------------

TEST(Resources, SharedTileIsExact) {
  const LaunchConfig cfg{32, 8, 2, 2, 4};
  const auto res = estimate_resources(Method::InPlaneFullSlice, cfg, 3, 4);
  EXPECT_EQ(res.smem_bytes, static_cast<std::size_t>((64 + 6) * (16 + 6) * 4));
  EXPECT_EQ(res.threads, 256);
}

TEST(Resources, MonotoneInRadiusAndColumns) {
  int prev = 0;
  for (int r : {1, 2, 3, 4, 5, 6}) {
    const auto res =
        estimate_resources(Method::InPlaneFullSlice, LaunchConfig{32, 4, 2, 2, 4}, r, 4);
    EXPECT_GT(res.regs_per_thread, prev);
    prev = res.regs_per_thread;
  }
  prev = 0;
  for (int ry : {1, 2, 4, 8}) {
    const auto res = estimate_resources(Method::InPlaneFullSlice,
                                        LaunchConfig{32, 4, 1, ry, 4}, 2, 4);
    EXPECT_GT(res.regs_per_thread, prev);
    prev = res.regs_per_thread;
  }
}

TEST(Resources, ForwardPipelineCostsMoreRegistersThanInPlane) {
  const LaunchConfig cfg{32, 4, 1, 2, 1};
  const auto fwd = estimate_resources(Method::ForwardPlane, cfg, 4, 4);
  const auto inp = estimate_resources(Method::InPlaneFullSlice, cfg, 4, 4);
  EXPECT_GT(fwd.regs_per_thread, inp.regs_per_thread);  // 2r+1 vs 2r values
}

TEST(Resources, DoublePrecisionDoublesValueRegisters) {
  const LaunchConfig cfg{32, 4, 1, 1, 1};
  const auto sp = estimate_resources(Method::InPlaneFullSlice, cfg, 2, 4);
  const auto dp = estimate_resources(Method::InPlaneFullSlice, cfg, 2, 8);
  EXPECT_GT(dp.regs_per_thread, sp.regs_per_thread);
}

}  // namespace
}  // namespace inplane::kernels
