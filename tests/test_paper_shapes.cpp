// The paper's headline results as regression tests: if a change to the
// simulator or kernels breaks one of these, the reproduction no longer
// matches the published shapes.  Each assertion names the figure/table it
// guards.  Bounds are deliberately loose — they pin the *shape* (who wins,
// roughly by how much), not exact numbers.

#include <gtest/gtest.h>

#include "autotune/tuner.hpp"
#include "core/stencil_spec.hpp"
#include "kernels/runner.hpp"

namespace inplane {
namespace {

using namespace inplane::kernels;
using namespace inplane::autotune;

const Extent3 kGrid{512, 512, 256};

double nv_baseline(const gpusim::DeviceSpec& dev, int order, bool dp = false) {
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  if (dp) {
    const auto k =
        make_kernel<double>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
    return time_kernel(*k, dev, kGrid).mpoints_per_s;
  }
  const auto k =
      make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
  return time_kernel(*k, dev, kGrid).mpoints_per_s;
}

template <typename T>
TuneResult tuned(Method m, const gpusim::DeviceSpec& dev, int order,
                 const SearchSpace& space = {}) {
  return exhaustive_tune<T>(m, StencilCoeffs::diffusion(order / 2), dev, kGrid, space);
}

class PerDevice : public testing::TestWithParam<int> {
 protected:
  gpusim::DeviceSpec dev() const {
    return gpusim::paper_devices()[static_cast<std::size_t>(GetParam())];
  }
};

// Table IV: tuned full-slice beats nvstencil for every order, SP and DP.
TEST_P(PerDevice, TableIV_FullSliceWinsAllOrdersSP) {
  for (int order : paper_stencil_orders()) {
    const double speedup =
        tuned<float>(Method::InPlaneFullSlice, dev(), order).best.timing.mpoints_per_s /
        nv_baseline(dev(), order);
    EXPECT_GT(speedup, 1.1) << "order " << order;
    EXPECT_LT(speedup, 2.2) << "order " << order;  // paper max ~1.96
  }
}

TEST_P(PerDevice, TableIV_DPSpeedupCompressed) {
  for (int order : {2, 8, 12}) {
    const double sp =
        tuned<float>(Method::InPlaneFullSlice, dev(), order).best.timing.mpoints_per_s /
        nv_baseline(dev(), order);
    const double dp =
        tuned<double>(Method::InPlaneFullSlice, dev(), order).best.timing.mpoints_per_s /
        nv_baseline(dev(), order, true);
    EXPECT_GT(dp, 0.95) << "order " << order;
    EXPECT_LT(dp, sp + 0.05) << "order " << order;  // DP never beats SP speedup
  }
}

// Fig. 7: with thread blocking only, vertical collapses at high order
// while horizontal/full-slice do not.
TEST_P(PerDevice, Fig7_VerticalCollapsesAtHighOrder) {
  SearchSpace tb;
  tb.rx_values = {1};
  tb.ry_values = {1};
  const double base = nv_baseline(dev(), 12);
  const double vertical =
      tuned<float>(Method::InPlaneVertical, dev(), 12, tb).best.timing.mpoints_per_s /
      base;
  const double horizontal =
      tuned<float>(Method::InPlaneHorizontal, dev(), 12, tb).best.timing.mpoints_per_s /
      base;
  EXPECT_LT(vertical, horizontal);
  EXPECT_LT(vertical, 1.25);
  EXPECT_GT(horizontal, 1.1);
}

TEST_P(PerDevice, Fig7_VerticalCompetitiveAtLowOrder) {
  SearchSpace tb;
  tb.rx_values = {1};
  tb.ry_values = {1};
  const double vertical =
      tuned<float>(Method::InPlaneVertical, dev(), 2, tb).best.timing.mpoints_per_s /
      nv_baseline(dev(), 2);
  EXPECT_GT(vertical, 1.2);  // "gave a benefit over nvstencil for some cases"
}

// Fig. 9: full-slice load efficiency above nvstencil for every order.
TEST_P(PerDevice, Fig9_FullSliceCoalescesBetter) {
  for (int order : paper_stencil_orders()) {
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const auto nv =
        make_kernel<float>(Method::ForwardPlane, cs, LaunchConfig::nvstencil_default());
    const double nv_eff = time_kernel(*nv, dev(), kGrid).load_efficiency;
    const double fs_eff =
        tuned<float>(Method::InPlaneFullSlice, dev(), order).best.timing.load_efficiency;
    EXPECT_GT(fs_eff, nv_eff) << "order " << order;
    EXPECT_GT(fs_eff, 0.7) << "order " << order;
  }
}

// Fig. 10: nvstencil+RB is the smallest of the three gains; full-slice+RB
// the largest.
TEST_P(PerDevice, Fig10_BreakdownOrdering) {
  SearchSpace tb;
  tb.rx_values = {1};
  tb.ry_values = {1};
  for (int order : {2, 8}) {
    const double base = nv_baseline(dev(), order);
    const double nv_rb =
        tuned<float>(Method::ForwardPlane, dev(), order).best.timing.mpoints_per_s /
        base;
    const double fs =
        tuned<float>(Method::InPlaneFullSlice, dev(), order, tb).best.timing.mpoints_per_s /
        base;
    const double fs_rb =
        tuned<float>(Method::InPlaneFullSlice, dev(), order).best.timing.mpoints_per_s /
        base;
    EXPECT_LT(nv_rb, fs_rb) << "order " << order;
    EXPECT_LE(fs, fs_rb) << "order " << order;
    EXPECT_GE(nv_rb, 1.0) << "order " << order;
    EXPECT_LT(nv_rb, 1.45) << "order " << order;  // paper: ~+11%
  }
}

std::string device_name(const testing::TestParamInfo<int>& info) {
  const char* names[] = {"GTX580", "GTX680", "C2070"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Devices, PerDevice, testing::Values(0, 1, 2), device_name);

// Table IV headline absolute numbers: order-2 SP within 25% of the paper.
TEST(PaperShapes, TableIV_AbsolutePerformanceBallpark) {
  const double gtx580 =
      tuned<float>(Method::InPlaneFullSlice, gpusim::DeviceSpec::geforce_gtx580(), 2)
          .best.timing.mpoints_per_s;
  EXPECT_NEAR(gtx580, 17294.0, 17294.0 * 0.25);
  const double c2070 =
      tuned<float>(Method::InPlaneFullSlice, gpusim::DeviceSpec::tesla_c2070(), 2)
          .best.timing.mpoints_per_s;
  EXPECT_NEAR(c2070, 10761.2, 10761.2 * 0.25);
}

// Section IV-C: speedup decreases from low to high order (GTX580 SP).
TEST(PaperShapes, TableIV_SpeedupDecaysWithOrder) {
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();
  const double low =
      tuned<float>(Method::InPlaneFullSlice, dev, 2).best.timing.mpoints_per_s /
      nv_baseline(dev, 2);
  const double high =
      tuned<float>(Method::InPlaneFullSlice, dev, 12).best.timing.mpoints_per_s /
      nv_baseline(dev, 12);
  EXPECT_GT(low, high);
}

// Section IV-C: the C2070 keeps winning at order 32 SP / 16 DP.
TEST(PaperShapes, HighOrderClaimC2070) {
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  EXPECT_GT(tuned<float>(Method::InPlaneFullSlice, dev, 32).best.timing.mpoints_per_s /
                nv_baseline(dev, 32),
            1.0);
  EXPECT_GT(tuned<double>(Method::InPlaneFullSlice, dev, 16).best.timing.mpoints_per_s /
                nv_baseline(dev, 16, true),
            1.0);
}

// Fig. 12: model-guided tuning within 10% of exhaustive everywhere.
TEST(PaperShapes, Fig12_ModelGuidedNearOptimal) {
  for (const auto& dev : gpusim::paper_devices()) {
    for (int order : {2, 8}) {
      const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
      const double exh =
          exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid)
              .best.timing.mpoints_per_s;
      const double mod =
          model_guided_tune<float>(Method::InPlaneFullSlice, cs, dev, kGrid, 0.05)
              .best.timing.mpoints_per_s;
      EXPECT_GE(mod, exh * 0.9) << dev.name << " order " << order;
    }
  }
}

}  // namespace
}  // namespace inplane
